"""The observability layer: spans, Chrome export, link stats, roll-ups.

The load-bearing guarantees tested here:

* spans pair back into intervals and nest correctly in the exported
  Chrome JSON (begin/end discipline per rank track);
* observability is **free when off** — a traced run returns the exact
  same result JSON as an untraced one (pinned per point by the
  ``tests/golden/trace_golden.json`` fixture, alongside the canonical
  trace hash itself);
* truncated traces say so in the export metadata and warn once.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

import repro.obs.chrome as chrome_module
from repro.core.problem import BroadcastProblem
from repro.core.runner import run_broadcast
from repro.machines import machine_from_spec
from repro.obs.chrome import (
    LINKS_PID,
    TRACE_SCHEMA,
    canonical_json,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.obs.linkstats import LinkUsage, link_usage, render_link_heatmap
from repro.obs.summary import (
    aggregate_observations,
    phase_stats,
    render_rollup,
    render_sweep_rollup,
    span_intervals,
    summarize_trace,
)
from repro.simulator.engine import Engine
from repro.simulator.trace import NULL_SPAN, TraceRecord, Tracer

GOLDEN_PATH = Path(__file__).parent / "golden" / "trace_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _run_point(key: str, tracer=None):
    spec, algorithm, s_part, L_part, seed_part = key.split("|")
    s = int(s_part.split("=")[1])
    L = int(L_part.split("=")[1])
    seed = int(seed_part.split("=")[1])
    machine = machine_from_spec(spec)
    problem = BroadcastProblem(
        machine=machine, sources=tuple(range(s)), message_size=L
    )
    return machine, run_broadcast(problem, algorithm, seed=seed, tracer=tracer)


def _traced(machine_spec="paragon:4x4", algorithm="Br_Lin", s=4, L=512):
    machine = machine_from_spec(machine_spec)
    problem = BroadcastProblem(
        machine=machine, sources=tuple(range(s)), message_size=L
    )
    tracer = Tracer()
    result = run_broadcast(problem, algorithm, tracer=tracer)
    return machine, tracer, result


class TestEngineSpan:
    def test_null_span_without_tracer(self):
        engine = Engine()
        assert engine.span("anything", rank=3) is NULL_SPAN

    def test_span_records_begin_and_end(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        with engine.span("fold", rank=1, round=2):
            pass
        kinds = [r.kind for r in tracer]
        assert kinds == ["span_begin", "span_end"]
        assert tracer.records[0].fields == {"name": "fold", "rank": 1, "round": 2}
        assert tracer.records[1].fields == tracer.records[0].fields

    def test_kind_filtered_tracer_drops_spans(self):
        tracer = Tracer(kinds=("send", "recv"))
        engine = Engine(tracer=tracer)
        with engine.span("fold"):
            pass
        assert len(tracer) == 0


class TestSpanIntervals:
    def test_pairs_in_begin_order(self):
        records = [
            TraceRecord(0.0, "span_begin", {"name": "a", "rank": 0}),
            TraceRecord(1.0, "span_begin", {"name": "a", "rank": 1}),
            TraceRecord(2.0, "span_end", {"name": "a", "rank": 1}),
            TraceRecord(5.0, "span_end", {"name": "a", "rank": 0}),
        ]
        intervals = span_intervals(records)
        assert [(i["rank"], i["start"], i["end"]) for i in intervals] == [
            (0, 0.0, 5.0),
            (1, 1.0, 2.0),
        ]

    def test_unmatched_begin_yields_no_interval(self):
        records = [TraceRecord(0.0, "span_begin", {"name": "a", "rank": 0})]
        assert span_intervals(records) == []

    def test_every_round_of_a_run_is_spanned(self):
        machine, tracer, result = _traced()
        intervals = span_intervals(tracer)
        # One span per (rank, round) plan entry, all named by phase.
        assert intervals
        assert all(i["name"] == "halving" for i in intervals)
        assert all(i["end"] >= i["start"] for i in intervals)
        # Spans cover the whole run: the last one ends at the finish.
        assert max(i["end"] for i in intervals) == result.elapsed_us

    def test_phase_stats_aggregation(self):
        machine, tracer, _ = _traced()
        stats = phase_stats(span_intervals(tracer))
        entry = stats["halving"]
        assert entry["count"] > 0
        assert entry["max_us"] <= entry["total_us"]
        assert entry["mean_us"] == pytest.approx(
            entry["total_us"] / entry["count"]
        )


class TestChromeExport:
    def test_schema_and_structure(self):
        machine, tracer, _ = _traced()
        trace = export_chrome_trace(tracer, topology=machine.topology)
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        assert trace["otherData"]["truncated"] is False
        assert trace["displayTimeUnit"] == "ms"
        assert all("ph" in e and "pid" in e for e in trace["traceEvents"])

    def test_one_process_per_rank_plus_links(self):
        machine, tracer, _ = _traced()
        trace = export_chrome_trace(tracer, topology=machine.topology)
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # Every rank that did anything has a named process track.
        rank_pids = [pid for pid in process_names if pid != LINKS_PID]
        assert rank_pids and all(
            process_names[pid] == f"rank {pid}" for pid in rank_pids
        )
        assert process_names[LINKS_PID] == "links"

    def test_spans_nest_correctly_per_track(self):
        machine, tracer, _ = _traced(algorithm="2-Step", s=6)
        trace = export_chrome_trace(tracer, topology=machine.topology)
        stacks = {}
        for event in trace["traceEvents"]:
            key = (event["pid"], event.get("tid", 0))
            if event["ph"] == "B":
                stacks.setdefault(key, []).append(event["name"])
            elif event["ph"] == "E":
                assert stacks.get(key), f"E without B on {key}"
                assert stacks[key].pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_link_tracks_are_wire_links_only(self):
        machine, tracer, _ = _traced()
        trace = export_chrome_trace(tracer, topology=machine.topology)
        first_wire = 2 * machine.topology.num_nodes
        link_tids = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["pid"] == LINKS_PID and e["ph"] == "X"
        }
        assert link_tids
        assert all(tid >= first_wire for tid in link_tids)

    def test_canonical_json_is_deterministic(self):
        machine, tracer, _ = _traced()
        machine2, tracer2, _ = _traced()
        a = canonical_json(export_chrome_trace(tracer, topology=machine.topology))
        b = canonical_json(
            export_chrome_trace(tracer2, topology=machine2.topology)
        )
        assert a == b

    def test_write_warns_once_on_truncation(self, tmp_path, monkeypatch):
        monkeypatch.setattr(chrome_module, "_truncation_warned", False)
        tracer = Tracer(limit=10)
        engine = Engine(tracer=tracer)
        for i in range(20):
            with engine.span("x", rank=0, round=i):
                pass
        assert tracer.truncated
        with pytest.warns(RuntimeWarning, match="capped"):
            trace = write_chrome_trace(tmp_path / "t.json", tracer)
        assert trace["otherData"]["truncated"] is True
        on_disk = json.loads((tmp_path / "t.json").read_text())
        assert on_disk["otherData"]["truncated"] is True
        # Second export stays silent (warn once per process).
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            write_chrome_trace(tmp_path / "t2.json", tracer)

    def test_recovery_spans_get_their_own_thread(self):
        records = [
            TraceRecord(0.0, "span_begin", {"name": "recovery-gossip", "rank": 0}),
            TraceRecord(1.0, "span_end", {"name": "recovery-gossip", "rank": 0}),
        ]
        tracer = Tracer()
        for r in records:
            tracer.record(r.time, r.kind, r.fields)
        trace = export_chrome_trace(tracer)
        begin = next(e for e in trace["traceEvents"] if e["ph"] == "B")
        assert begin["tid"] == chrome_module.RECOVERY_TID


class TestGoldenTraces:
    """Pin exported traces AND traced-run results by sha256."""

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_trace_and_result_match_golden(self, key):
        tracer = Tracer()
        machine, result = _run_point(key, tracer=tracer)
        trace = export_chrome_trace(tracer, topology=machine.topology)
        blob = canonical_json(trace)
        expect = GOLDEN[key]
        assert len(trace["traceEvents"]) == expect["events"]
        assert hashlib.sha256(blob.encode()).hexdigest() == expect["trace_sha256"]
        result_blob = json.dumps(
            result.to_dict(), sort_keys=True, separators=(",", ":")
        )
        assert (
            hashlib.sha256(result_blob.encode()).hexdigest()
            == expect["result_sha256"]
        )

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_observability_off_is_byte_identical(self, key):
        """The traced result equals the untraced result, bit for bit."""
        _, traced = _run_point(key, tracer=Tracer())
        _, untraced = _run_point(key, tracer=None)
        a = json.dumps(traced.to_dict(), sort_keys=True, separators=(",", ":"))
        b = json.dumps(untraced.to_dict(), sort_keys=True, separators=(",", ":"))
        assert a == b


class TestLinkStats:
    def test_usage_from_trace(self):
        machine, tracer, _ = _traced()
        usage = link_usage(tracer, topology=machine.topology, bins=20)
        assert usage.bins == 20
        assert usage.busy  # something moved
        first_wire = 2 * machine.topology.num_nodes
        assert all(link >= first_wire for link in usage.busy)
        # Busy fractions are fractions.
        for series in usage.busy.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in series)

    def test_empty_trace(self):
        usage = link_usage(Tracer())
        assert usage.bins == 0
        assert render_link_heatmap(usage) == "(no traced transfers)"

    def test_heatmap_renders_busiest_rows(self):
        machine, tracer, _ = _traced()
        usage = link_usage(tracer, topology=machine.topology, bins=16)
        art = render_link_heatmap(usage, topology=machine.topology, k=3)
        lines = art.splitlines()
        assert "link utilization" in lines[0]
        assert len(lines) == 1 + min(3, len(usage.busy))
        assert all("|" in line for line in lines[1:])

    def test_queue_mode(self):
        usage = LinkUsage(
            bin_us=5.0,
            bins=2,
            busy={3: [1.0, 0.0]},
            queue={3: [4.0, 0.0]},
        )
        art = render_link_heatmap(usage, queue=True)
        assert "queue depth" in art
        # The saturated bin renders with the densest ramp glyph.
        assert "@" in art


class TestSummarize:
    def test_summary_shape_and_roundtrip(self):
        machine, tracer, _ = _traced(algorithm="2-Step", s=6)
        summary = summarize_trace(tracer, topology=machine.topology)
        assert summary["slowest_phase"] in ("gather", "bcast")
        assert set(summary["phases"]) == {"gather", "bcast"}
        assert summary["hottest_links"]
        assert summary["truncated"] is False
        # JSON round-trip (the sweep layer stores this beside the cache).
        assert json.loads(json.dumps(summary)) == summary

    def test_rollup_rendering(self):
        machine, tracer, _ = _traced(algorithm="2-Step", s=6)
        summary = summarize_trace(tracer, topology=machine.topology)
        text = render_rollup(summary)
        assert "<- slowest" in text
        assert "hottest links" in text

    def test_aggregate_observations(self):
        machine, tracer, _ = _traced()
        summary = summarize_trace(tracer, topology=machine.topology)
        obs = {
            "algorithm": "Br_Lin",
            "distribution": "E",
            "machine": "paragon:4x4",
            "summary": summary,
        }
        aggregate = aggregate_observations([obs, None, obs])
        assert aggregate["observed"] == 2
        (group,) = aggregate["groups"]
        assert group["algorithm"] == "Br_Lin"
        assert group["points"] == 2
        assert group["slowest_phase"] == "halving"
        text = render_sweep_rollup(aggregate)
        assert "Br_Lin" in text and "halving" in text

    def test_recovery_spans_are_summarized(self):
        """A run that actually serves missing messages spans recovery."""
        machine = machine_from_spec("paragon:4x4")
        problem = BroadcastProblem(
            machine=machine, sources=(0, 5), message_size=512
        )
        tracer = Tracer()
        result = run_broadcast(
            problem,
            "Br_Lin",
            tracer=tracer,
            faults="node:15",
            recover=True,
        )
        assert result.recovered is not None
        names = {i["name"] for i in span_intervals(tracer)}
        if result.recovery_rounds:
            assert "recovery-gossip" in names or "recovery-serve" in names
