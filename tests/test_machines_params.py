"""Unit tests for machine parameters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.machines import MachineParams
from repro.machines.paragon import PARAGON_PARAMS
from repro.machines.t3d import T3D_PARAMS


def make_params(**overrides):
    base = dict(
        name="p",
        t_send_overhead=10.0,
        t_recv_overhead=5.0,
        t_byte=0.01,
        t_hop=0.1,
        t_mem_byte=0.02,
    )
    base.update(overrides)
    return MachineParams(**base)


class TestValidation:
    def test_negative_field_rejected(self):
        with pytest.raises(ConfigurationError):
            make_params(t_byte=-1.0)

    def test_bad_collective_style_rejected(self):
        with pytest.raises(ConfigurationError):
            make_params(collective_style="magic")

    def test_bad_segment_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_params(collective_segment_bytes=0)


class TestOverheadTiers:
    def test_plain_overheads(self):
        p = make_params()
        assert p.send_overhead() == 10.0
        assert p.recv_overhead() == 5.0

    def test_collective_scale(self):
        p = make_params(collective_overhead_scale=0.1)
        assert p.send_overhead(collective=True) == pytest.approx(1.0)
        assert p.send_overhead(collective=False) == 10.0

    def test_mpi_scale(self):
        p = make_params(mpi_overhead_scale=1.5)
        assert p.recv_overhead(mpi=True) == pytest.approx(7.5)

    def test_scales_compose(self):
        p = make_params(collective_overhead_scale=0.5, mpi_overhead_scale=2.0)
        assert p.send_overhead(collective=True, mpi=True) == pytest.approx(10.0)


class TestCopyAndLatency:
    def test_copy_cost(self):
        p = make_params()
        assert p.copy_cost(100) == pytest.approx(2.0)

    def test_collective_copy_scale(self):
        p = make_params(collective_mem_scale=0.1)
        assert p.copy_cost(100, collective=True) == pytest.approx(0.2)

    def test_latency_composition(self):
        p = make_params(route_setup=1.0)
        # o_s + setup + 2 hops + bytes*(wire+copy) + o_r
        assert p.latency(100, hops=2) == pytest.approx(
            10 + 1 + 0.2 + 100 * 0.01 + 5 + 100 * 0.02
        )

    def test_with_overrides_returns_copy(self):
        p = make_params()
        q = p.with_overrides(t_byte=0.5)
        assert q.t_byte == 0.5
        assert p.t_byte == 0.01
        assert q.name == p.name


class TestCalibratedPresets:
    def test_paragon_software_heavier_than_t3d(self):
        assert PARAGON_PARAMS.t_send_overhead > T3D_PARAMS.t_send_overhead

    def test_t3d_wire_faster(self):
        assert T3D_PARAMS.t_byte < PARAGON_PARAMS.t_byte

    def test_t3d_has_collective_fast_path(self):
        assert T3D_PARAMS.collective_overhead_scale < 0.5
        assert PARAGON_PARAMS.collective_overhead_scale == 1.0

    def test_paragon_mpi_penalty(self):
        assert PARAGON_PARAMS.mpi_overhead_scale > 1.0

    def test_collective_styles(self):
        assert PARAGON_PARAMS.collective_style == "monolithic"
        assert T3D_PARAMS.collective_style == "pipelined"
