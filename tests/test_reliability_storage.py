"""Storage-reliability semantics: quarantine, v1 legacy, audits, CLI.

Sits above the unit layers (``test_reliability_envelope``,
``test_reliability_iofaults``): these tests drive the *integration* of
the envelope and quarantine machinery through :class:`ResultCache`,
the ``--verify-cache`` offline scan, and the reliability accounting
that rides along in :class:`SweepReport`.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.metrics.progress import SweepReport
from repro.reliability import ENTRY_SCHEMA_V2, ReliabilityCounters
from repro.sweep.cache import (
    TMP_MAX_AGE_S,
    TMP_TTL_ENV_VAR,
    ResultCache,
    resolve_tmp_ttl,
)
from repro.sweep.cli import main as sweep_main
from repro.sweep.executor import SweepExecutor
from repro.sweep.spec import SweepPoint


def _point(seed=0):
    return SweepPoint(
        machine="paragon:4x4",
        sources=(0, 1),
        message_size=256,
        algorithm="Br_Lin",
        seed=seed,
        distribution="E",
    )


def _populate(cache, seed=0, observe=False):
    point = _point(seed)
    SweepExecutor(jobs=1, cache=cache, observe=observe).run([point])
    return point


class TestResolveTmpTtl:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TMP_TTL_ENV_VAR, "30")
        assert resolve_tmp_ttl(5.0) == 5.0

    def test_explicit_zero_is_legal(self):
        # "Reap everything now" — the clear() semantics — is a valid ask
        # from code, even though it is rejected from the environment.
        assert resolve_tmp_ttl(0.0) == 0.0

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_explicit_bad_argument_raises(self, bad):
        with pytest.raises(ConfigurationError, match="tmp_ttl_s"):
            resolve_tmp_ttl(bad)

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv(TMP_TTL_ENV_VAR, "45")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tmp_ttl(None) == 45.0

    def test_default_when_neither(self, monkeypatch):
        monkeypatch.delenv(TMP_TTL_ENV_VAR, raising=False)
        assert resolve_tmp_ttl(None) == TMP_MAX_AGE_S

    @pytest.mark.parametrize("bad", ["abc", "0", "-5"])
    def test_bad_env_value_warns_and_falls_back(self, monkeypatch, bad):
        monkeypatch.setenv(TMP_TTL_ENV_VAR, bad)
        with pytest.warns(RuntimeWarning, match=TMP_TTL_ENV_VAR):
            assert resolve_tmp_ttl(None) == TMP_MAX_AGE_S

    def test_cache_threads_the_threshold_through(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TMP_TTL_ENV_VAR, "7.5")
        assert ResultCache(tmp_path).tmp_ttl_s == 7.5
        assert ResultCache(tmp_path, tmp_ttl_s=2.0).tmp_ttl_s == 2.0

    def test_gc_honours_a_short_ttl(self, tmp_path):
        cache = ResultCache(tmp_path, tmp_ttl_s=0.0)
        shard = tmp_path / "ab"
        shard.mkdir(parents=True)
        (shard / "x.json.host.1.0.tmp").write_text("{")
        assert cache.gc_stale_tmp(shard) == 1
        assert not (shard / "x.json.host.1.0.tmp").exists()


class TestQuarantine:
    def test_corrupt_entry_moved_not_deleted(self, tmp_path):
        counters = ReliabilityCounters()
        cache = ResultCache(tmp_path, counters=counters)
        point = _populate(cache)
        path = cache.path_for(point.key())
        path.write_text("{ torn !!!")
        assert cache.load(point) is None  # a defect is a miss...
        assert not path.exists()  # ...and the evidence moved aside
        moved = cache.quarantine_root / path.name
        assert moved.read_text() == "{ torn !!!"
        assert counters.quarantines == 1

    def test_reason_record_names_the_defect(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        cache.path_for(point.key()).write_text("{ torn !!!")
        cache.load(point)
        record = json.loads(
            (cache.quarantine_root / f"{point.key()}.reason.json").read_text()
        )
        assert record["key"] == point.key()
        assert "invalid-json" in record["reason"]
        assert record["files"] == [f"{point.key()}.json"]
        assert record["quarantined_at"] > 0

    def test_obs_sibling_quarantined_with_its_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache, observe=True)
        obs_path = cache.obs_path_for(point.key())
        assert obs_path.exists()
        cache.path_for(point.key()).write_text("not json")
        cache.load(point)
        assert not obs_path.exists()
        assert (cache.quarantine_root / obs_path.name).exists()

    def test_quarantine_is_invisible_to_entry_globs(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        assert len(cache) == 1
        cache.path_for(point.key()).write_text("junk")
        cache.load(point)
        # The quarantined copy must not count as (or ever be served as)
        # an entry: the quarantine dir name is longer than a shard's.
        assert len(cache) == 0
        assert cache.verify_all().verified == 0

    def test_recompute_repopulates_after_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        cache.path_for(point.key()).write_text("junk")
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run([point])
        assert executor.last_report.computed == 1  # the miss recomputed
        assert cache.load(point) is not None
        assert executor.last_report.reliability.quarantines == 1


class TestLegacyV1:
    def _write_v1(self, cache, point):
        result, compute_s = cache.load(point)
        body = {
            "point": point.payload(),
            "result": result,
            "compute_s": compute_s,
        }
        cache.path_for(point.key()).write_text(
            json.dumps(body, sort_keys=True)
        )
        return result

    def test_v1_entry_still_readable(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        result = self._write_v1(cache, point)
        loaded = cache.load(point)
        assert loaded is not None and loaded[0] == result

    def test_v1_served_as_a_hit_not_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        self._write_v1(cache, point)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run([point])
        assert executor.last_report.cached == 1

    def test_store_rewrites_v1_as_v2(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _populate(cache)
        result = self._write_v1(cache, point)
        cache.store(point, result, 0.125)
        on_disk = json.loads(cache.path_for(point.key()).read_text())
        assert on_disk["schema"] == ENTRY_SCHEMA_V2


class TestVerifyAll:
    def test_mixed_cache_audit(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = _populate(cache, seed=0)
        legacy = _populate(cache, seed=1)
        corrupt = _populate(cache, seed=2)
        TestLegacyV1()._write_v1(cache, legacy)
        cache.path_for(corrupt.key()).write_text("{ half a write")
        audit = cache.verify_all()
        assert audit.verified == 1
        assert audit.legacy_v1 == 1
        assert audit.quarantined_now == 1
        assert audit.quarantined_total == 1
        assert "1 verified, 1 legacy-v1, 1 newly quarantined" in audit.summary()
        # A second scan finds the damage already swept aside.
        again = cache.verify_all()
        assert again.quarantined_now == 0
        assert again.quarantined_total == 1
        assert cache.load(good) is not None

    def test_empty_cache_is_clean(self, tmp_path):
        audit = ResultCache(tmp_path).verify_all()
        assert (audit.verified, audit.quarantined_now) == (0, 0)


class TestVerifyCacheCli:
    def test_clean_cache_exits_zero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        _populate(cache)
        code = sweep_main(
            ["--verify-cache", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        assert "1 verified" in capsys.readouterr().out

    def test_fresh_corruption_exits_nonzero(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        point = _populate(cache)
        cache.path_for(point.key()).write_text("rot")
        code = sweep_main(
            ["--verify-cache", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 1
        assert "1 newly quarantined" in capsys.readouterr().out
        # The scan moved the rot aside, so a re-scan is calm again.
        assert (
            sweep_main(
                ["--verify-cache", "--cache-dir", str(tmp_path / "cache")]
            )
            == 0
        )

    def test_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            sweep_main(["--verify-cache"])


class TestReportReliability:
    def test_clean_report_bytes_unchanged(self):
        # The "reliability" key appears only when something happened:
        # golden fixtures of clean runs stay byte-identical.
        report = SweepReport(total=4, computed=4, jobs=2)
        assert "reliability" not in report.to_dict()
        assert "reliability" not in report.summary()

    def test_roundtrip_with_counters(self):
        report = SweepReport(total=2, computed=2, jobs=1)
        report.reliability.retries = 3
        report.reliability.steals = 1
        data = report.to_dict()
        assert data["reliability"] == {
            "retries": 3,
            "quarantines": 0,
            "steals": 1,
            "fencing_rejections": 0,
            "corrupt_records": 0,
        }
        back = SweepReport.from_dict(data)
        assert back.reliability == report.reliability
        assert "reliability:" in back.summary()

    def test_merge_accumulates_counters(self):
        a = SweepReport(total=1, computed=1, jobs=1)
        a.reliability.quarantines = 1
        b = SweepReport(total=1, computed=1, jobs=1)
        b.reliability.quarantines = 2
        b.reliability.fencing_rejections = 1
        a.merge(b)
        assert a.reliability.quarantines == 3
        assert a.reliability.fencing_rejections == 1

    def test_since_subtracts_counters(self):
        earlier = SweepReport(total=1, computed=1, jobs=1)
        earlier.reliability.retries = 1
        later = SweepReport(total=3, computed=3, jobs=1)
        later.reliability.retries = 4
        delta = later.since(earlier)
        assert delta.reliability.retries == 3
