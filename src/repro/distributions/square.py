"""Square block distribution — Sq(s) of §4.

The sources sit in a ``ceil(sqrt(s)) x ceil(sqrt(s))`` block whose
top-left corner is (0, 0), filled column by column.  When the block
would not fit the grid vertically (or horizontally) its shape is
clamped and widened/deepened accordingly, so every feasible ``s``
places.

Square blocks are the worst case for the ``Br_xy_*`` algorithms: only
``ceil(sqrt(s))`` rows and columns contain sources, so few lines can
generate new sources in the first dimension — the Figure 6 spike.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.distributions.base import SourceDistribution

__all__ = ["SquareBlockDistribution"]


class SquareBlockDistribution(SourceDistribution):
    """Sq(s): a near-square block at the grid's top-left corner."""

    key = "Sq"
    label = "square block"

    def place(self, rows: int, cols: int, s: int) -> List[Tuple[int, int]]:
        side = math.ceil(math.sqrt(s))
        height = min(side, rows)
        width = min(math.ceil(s / height), cols)
        # Widen (then deepen) until the block holds s cells; feasibility
        # (s <= rows * cols) is guaranteed by the base-class check.
        while height * width < s:
            if width < cols:
                width += 1
            else:
                height += 1
        cells: List[Tuple[int, int]] = []
        remaining = s
        for col in range(width):
            take = min(height, remaining)
            cells.extend((row, col) for row in range(take))
            remaining -= take
            if remaining == 0:
                break
        return cells
