"""Ablation: the path-reservation contention model (DESIGN.md §5.1)."""

from __future__ import annotations

from repro.bench import ablations

from benchmarks.conftest import run_experiment


def test_ablation_contention(benchmark):
    """Congestion of the §2 uncoordinated flood needs link contention."""
    run_experiment(benchmark, ablations.ablation_contention)
