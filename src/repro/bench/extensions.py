"""Extension experiments: probing beyond the paper's design space.

These are not paper figures — they exercise the extension algorithms
(``Br_Ring``, ``Auto_Predict``) and the hypercube machine, showing the
framework answers questions the paper could not ask.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.runner import measure_problem
from repro.bench.types import Check, FigureResult, Series
from repro.core.problem import BroadcastProblem
from repro.distributions import DISTRIBUTIONS
from repro.machines import hypercube, paragon, t3d

__all__ = [
    "extension_ring_crossover",
    "extension_auto_portfolio",
    "extension_hypercube",
    "ALL_EXTENSIONS",
]


def extension_ring_crossover(quick: bool = False) -> FigureResult:
    """Br_Ring vs Br_Lin: bandwidth-bound vs overhead-bound regimes.

    The ring moves the information-theoretic minimum bytes per
    processor but pays O(p) rounds of software overhead; halving pays
    O(log p) overheads but roughly doubles the bytes.  The crossover
    message size is therefore machine-dependent: high software cost
    (Paragon) pushes it far right, cheap messaging with expensive
    combining (T3D) pulls it left.
    """
    sizes = [256, 4096, 32768] if quick else [64, 256, 1024, 4096, 16384, 32768, 65536]
    result = FigureResult(
        "Extension: ring crossover",
        "Br_Ring vs Br_Lin across the message-size axis",
    )
    ratios: Dict[str, List[float]] = {}
    for label, machine, s in (
        ("Paragon 10x10 (s=30)", paragon(10, 10), 30),
        ("T3D 64 (s=32)", t3d(64), 32),
    ):
        sources = DISTRIBUTIONS["E"].generate(machine, s)
        ratios[label] = []
        for L in sizes:
            problem = BroadcastProblem(machine, sources, message_size=L)
            t_ring = measure_problem(problem, "Br_Ring")
            t_lin = measure_problem(problem, "Br_Lin")
            ratios[label].append(t_ring / t_lin)
    series = Series(
        "Br_Ring time / Br_Lin time (ratio < 1: ring wins)",
        "L (bytes)",
        sizes,
        ratios,
        y_label="ratio",
    )
    result.series.append(series)
    result.checks.append(
        Check(
            "the ring is hopeless on small messages everywhere",
            all(r[0] > 2.0 for r in ratios.values()),
        )
    )
    result.checks.append(
        Check(
            "the ring's relative cost falls as messages grow",
            all(r[-1] < r[0] for r in ratios.values()),
            ", ".join(
                f"{label}: {r[0]:.1f} -> {r[-1]:.1f}"
                for label, r in ratios.items()
            ),
        )
    )
    result.checks.append(
        Check(
            "the T3D reaches the crossover before the Paragon",
            ratios["T3D 64 (s=32)"][-1] < ratios["Paragon 10x10 (s=30)"][-1],
        )
    )
    return result


def extension_auto_portfolio(quick: bool = False) -> FigureResult:
    """Auto_Predict vs every fixed portfolio member across a workload mix.

    The model-driven pick should track the per-problem best within the
    prediction error (contention), giving a lower total than any single
    fixed choice over a mixed workload.
    """
    machine = paragon(16, 16)
    workload = [
        ("Cr", 40, 6144),
        ("Sq", 60, 4096),
        ("E", 20, 512),
        ("R", 100, 2048),
    ]
    if not quick:
        workload += [("Dr", 30, 8192), ("B", 75, 6144), ("E", 150, 1024)]
    fixed = ["Br_Lin", "Br_xy_source", "Repos_xy_source"]
    totals: Dict[str, float] = {name: 0.0 for name in fixed}
    totals["Auto_Predict"] = 0.0
    labels = []
    curves: Dict[str, List[float]] = {name: [] for name in totals}
    for key, s, L in workload:
        sources = DISTRIBUTIONS[key].generate(machine, s)
        problem = BroadcastProblem(machine, sources, message_size=L)
        labels.append(f"{key}/s={s}/L={L}")
        for name in totals:
            t = measure_problem(problem, name)
            totals[name] += t
            curves[name].append(t)
    series = Series(
        "16x16 Paragon, mixed workload", "case", labels, curves
    )
    result = FigureResult(
        "Extension: predictive portfolio",
        "model-driven selection vs any fixed algorithm",
    )
    result.series.append(series)
    best_fixed = min(totals[name] for name in fixed)
    result.checks.append(
        Check(
            "Auto_Predict beats or matches every fixed choice in total",
            totals["Auto_Predict"] <= 1.05 * best_fixed,
            f"auto {totals['Auto_Predict']:.1f} ms vs best fixed "
            f"{best_fixed:.1f} ms",
        )
    )
    return result


def extension_hypercube(quick: bool = False) -> FigureResult:
    """The paper's algorithms on the related-work architecture.

    On a hypercube, ``Br_Lin``'s halving partners are physical
    neighbours, so its contention essentially disappears while
    ``2-Step`` still serialises at its root — the Paragon ordering,
    cleaner.
    """
    machine = hypercube(64)
    s_values = [8, 32] if quick else [4, 8, 16, 32, 64]
    algos = ["Br_Lin", "2-Step", "PersAlltoAll", "Br_Ring"]
    curves: Dict[str, List[float]] = {a: [] for a in algos}
    for s in s_values:
        sources = DISTRIBUTIONS["E"].generate(machine, s)
        problem = BroadcastProblem(machine, sources, message_size=4096)
        for a in algos:
            curves[a].append(measure_problem(problem, a))
    series = Series("64-node hypercube, L = 4K", "s", s_values, curves)
    result = FigureResult(
        "Extension: hypercube",
        "the algorithm family on the related-work architecture",
    )
    result.series.append(series)
    i = s_values.index(32)
    result.checks.append(
        Check(
            "Br_Lin dominates on its native topology",
            curves["Br_Lin"][i] < min(
                curves["2-Step"][i],
                curves["PersAlltoAll"][i],
                curves["Br_Ring"][i],
            ),
        )
    )
    result.checks.append(
        Check(
            "the root hot spot persists across topologies",
            curves["2-Step"][i] > 1.5 * curves["Br_Lin"][i],
        )
    )
    return result


#: Registry used by the CLI and bench targets.
ALL_EXTENSIONS = {
    "extension-ring": extension_ring_crossover,
    "extension-auto": extension_auto_portfolio,
    "extension-hypercube": extension_hypercube,
}
