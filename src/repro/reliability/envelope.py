"""Self-verifying storage envelopes (``repro-cache/2``).

A v2 cache entry wraps its payload in an envelope carrying a sha256 of
the payload's canonical JSON form::

    {"schema": "repro-cache/2",
     "sha256": "<hex digest of canonical(body)>",
     "body": {...}}

:func:`seal_envelope` builds one; :func:`open_envelope` verifies and
unwraps it, raising :class:`EnvelopeError` on any defect — a digest
mismatch (torn write, bit rot, truncation that still parses), a
malformed envelope, or a body that is not an object.  Verification
re-serialises the body with the same canonical ``json.dumps`` used at
seal time, so a JSON round-trip through disk is digest-stable (Python's
float repr round-trips exactly).

Legacy v1 entries — plain ``{point, result, compute_s}`` objects with
no ``schema`` key — pass through :func:`open_envelope` unverified but
readable, tagged ``"v1"`` so callers can count them (the
``--verify-cache`` scan reports them separately; they are rewritten as
v2 whenever their point is recomputed or re-stored).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Tuple

from repro.errors import ReproError

__all__ = [
    "ENTRY_SCHEMA_V2",
    "EnvelopeError",
    "canonical_digest",
    "open_envelope",
    "seal_envelope",
]

#: Schema tag of checksummed entries.  Bump on incompatible envelope
#: layout changes; readers treat unknown schemas as corrupt (quarantine,
#: never serve) rather than guessing.
ENTRY_SCHEMA_V2 = "repro-cache/2"


class EnvelopeError(ReproError):
    """A storage envelope failed verification or parsing.

    The message is the quarantine *reason*: machine-checkable prefix
    (``checksum-mismatch``, ``bad-envelope``, ``invalid-json``) plus
    human detail.
    """


def canonical_digest(body: Dict[str, Any]) -> str:
    """sha256 hex digest of ``body``'s canonical JSON form."""
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def seal_envelope(body: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``body`` in a verified ``repro-cache/2`` envelope."""
    return {
        "schema": ENTRY_SCHEMA_V2,
        "sha256": canonical_digest(body),
        "body": body,
    }


def open_envelope(text: str) -> Tuple[Dict[str, Any], str]:
    """Parse and verify stored entry ``text``.

    Returns ``(body, version)`` where ``version`` is ``"v2"`` for a
    verified envelope or ``"v1"`` for a legacy plain entry.

    Raises
    ------
    EnvelopeError
        On unparseable JSON, a non-object entry, an unknown schema, a
        malformed envelope, or — the case the whole layer exists for —
        a sha256 that does not match the body.
    """
    try:
        entry = json.loads(text)
    except ValueError as exc:
        raise EnvelopeError(f"invalid-json: {exc}") from None
    if not isinstance(entry, dict):
        raise EnvelopeError(
            f"bad-envelope: entry is {type(entry).__name__}, not an object"
        )
    schema = entry.get("schema")
    if schema is None:
        # Legacy v1: the body *is* the entry.  No digest to verify —
        # the caller's field validation is the only defence, as before.
        return entry, "v1"
    if schema != ENTRY_SCHEMA_V2:
        raise EnvelopeError(f"bad-envelope: unknown schema {schema!r}")
    body = entry.get("body")
    stored = entry.get("sha256")
    if not isinstance(body, dict) or not isinstance(stored, str):
        raise EnvelopeError("bad-envelope: missing body or sha256")
    actual = canonical_digest(body)
    if actual != stored:
        raise EnvelopeError(
            f"checksum-mismatch: stored {stored[:12]}.., "
            f"recomputed {actual[:12]}.."
        )
    return body, "v2"
