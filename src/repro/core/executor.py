"""Runs a communication schedule on the simulated machine.

Each rank executes its slice of the schedule with **data-parallel
synchronisation** (§5: "we avoid global synchronization ... and use
data parallelism to synchronize between steps and iterations"): a rank
moves to round *k+1* as soon as its *own* round-*k* operations are
complete — its receives have arrived and been combined, and its sends
have drained.  Waiting, congestion, and straggler propagation therefore
emerge from message timing, not from artificial barriers.

Per round, a rank:

1. issues all its sends as non-blocking ``isend``\\ s (each charges the
   sender's per-message software overhead back-to-back, as a real CPU
   would),
2. blocks on each of its receives (in schedule order; arrival order
   does not matter because the inbox buffers out-of-order messages),
   paying the receive overhead and the per-byte combining copy,
3. waits for its sends' completion (blocking-send semantics: the paper's
   algorithms use blocking NX/MPI calls).

The payload carried in each envelope is the transfer's message set, so
the executor's return value — the set of original messages this rank
ended up holding — gives end-to-end delivery verification through the
actual simulated communication, independent of
:meth:`~repro.core.schedule.Schedule.validate`'s static check.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set, Tuple

from repro.core.schedule import Schedule, Transfer
from repro.mpsim.comm import Comm

__all__ = ["ScheduleExecutor"]


class ScheduleExecutor:
    """Compiles a :class:`Schedule` into per-rank SPMD programs.

    The per-rank send/receive lists are precomputed once (the schedule
    is static), so program setup is O(transfers) overall rather than
    O(rounds x p).
    """

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.problem = schedule.problem
        p = self.problem.p
        # per-rank: list of (round_idx, sends, recvs) — only rounds where
        # the rank participates, keeping the hot loop small.
        self._plan: List[List[Tuple[int, List[Transfer], List[Transfer]]]] = [
            [] for _ in range(p)
        ]
        for round_idx, rnd in enumerate(schedule.rounds):
            touched: Dict[int, Tuple[List[Transfer], List[Transfer]]] = {}
            for t in rnd:
                touched.setdefault(t.src, ([], []))[0].append(t)
                touched.setdefault(t.dst, ([], []))[1].append(t)
            for rank, (sends, recvs) in touched.items():
                self._plan[rank].append((round_idx, sends, recvs))

    def program(self, comm: Comm) -> Generator[Any, Any, frozenset]:
        """The SPMD program for ``comm.rank``; returns its final holdings."""
        rank = comm.rank
        rounds = self.schedule.rounds
        holdings: Set[int] = set(self.problem.initial_holdings()[rank])
        for round_idx, sends, recvs in self._plan[rank]:
            rnd = rounds[round_idx]
            comm.iteration = round_idx
            mode = comm.with_mode(collective=rnd.collective, mpi=rnd.mpi)
            requests = []
            for t in sends:
                request = yield from mode.isend(
                    t.dst, t.msgset, nbytes=t.nbytes(self.problem), tag=round_idx
                )
                requests.append(request)
            for t in recvs:
                envelope = yield from mode.recv(source=t.src, tag=round_idx)
                holdings |= envelope.payload
            for request in requests:
                yield from request.wait()
        return frozenset(holdings)
