"""Declarative experiment pipeline: TOML configs in, paper reports out.

Every experiment of the reproduction — the thirteen figures, the three
§5 text claims, the ablations, the extension studies and the robustness
study — is described by one TOML file under ``configs/``.  A config
names the machines, sweep axes, engine-visible parameters and shape
checks of its experiment; the pipeline

* **loads and validates** it (:mod:`repro.pipeline.loader`) into an
  :class:`~repro.pipeline.schema.ExperimentConfig`, rejecting unknown
  keys, unknown assertion types and malformed axes at load time with
  errors that name the offending file and key;
* **expands** it into the existing sweep machinery —
  :meth:`~repro.pipeline.schema.ExperimentConfig.sweep_specs` yields
  cartesian :class:`~repro.sweep.spec.SweepSpec` grids,
  :func:`~repro.pipeline.runner.experiment_points` the exact
  :class:`~repro.sweep.spec.SweepPoint` list an experiment will
  evaluate (usable to pre-warm the cache via
  :func:`~repro.sweep.distributed.run_sharded`);
* **runs** it (:mod:`repro.pipeline.runner`) through the same
  :mod:`repro.bench.runner` measurement primitives the hand-written
  figure functions use, producing a bit-identical
  :class:`~repro.bench.types.FigureResult`;
* **reports** it (:mod:`repro.pipeline.report`) as one self-contained
  HTML file per experiment — tables, SVG curves, checks, placement art,
  observability roll-ups — plus an index page, and regenerates
  EXPERIMENTS.md and RESULTS.txt as build artifacts
  (:mod:`repro.pipeline.docsgen`).

CLI: ``python -m repro report all`` reproduces the whole paper in one
command (see :mod:`repro.pipeline.cli` and docs/PIPELINE.md).
"""

from __future__ import annotations

from repro.pipeline.loader import (
    DEFAULT_CONFIG_DIR,
    load_config,
    load_config_dir,
)
from repro.pipeline.runner import experiment_points, run_experiment
from repro.pipeline.schema import (
    CheckSpec,
    DocSpec,
    ExperimentConfig,
    SeriesSpec,
)

__all__ = [
    "DEFAULT_CONFIG_DIR",
    "load_config",
    "load_config_dir",
    "run_experiment",
    "experiment_points",
    "ExperimentConfig",
    "SeriesSpec",
    "CheckSpec",
    "DocSpec",
]
