"""Figure 8: 120-node Paragon, dimension sweep."""

from __future__ import annotations

from benchmarks.conftest import run_config


def test_fig08(benchmark):
    """Figure 8: 120-node Paragon, dimension sweep."""
    run_config(benchmark, "fig8")
