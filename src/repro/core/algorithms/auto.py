"""Auto_Predict — model-driven algorithm selection (extension).

Where the paper's §5.2 selector applies three fixed rules,
``Auto_Predict`` runs the closed-form critical-path model
(:mod:`repro.core.predict`) over a candidate portfolio and compiles the
schedule with the best *predicted* completion time for this exact
(machine, distribution, s, L).  Because schedule construction and
prediction are engine-free, the what-if search costs microseconds of
real time per candidate.

The portfolio spans the paper's recommendation space: the three Br_*
algorithms, repositioning, and the two library collectives (so the
right answer is available on both machine families).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.algorithms.base import (
    BroadcastAlgorithm,
    get_algorithm,
    register,
)
from repro.core.problem import BroadcastProblem
from repro.core.schedule import Schedule

__all__ = ["AutoPredict"]

#: Candidate portfolio; mesh-only members are skipped off-mesh.
DEFAULT_PORTFOLIO: Tuple[str, ...] = (
    "Br_Lin",
    "Br_xy_source",
    "Repos_xy_source",
    "Br_Ring",
    "MPI_AllGather",
    "MPI_Alltoall",
)


@register
class AutoPredict(BroadcastAlgorithm):
    """Compile every candidate, predict, keep the winner's schedule."""

    name = "Auto_Predict"
    requires_mesh = False

    def __init__(self, portfolio: Sequence[str] = DEFAULT_PORTFOLIO) -> None:
        self.portfolio = tuple(portfolio)

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        from repro.core.predict import predict_schedule_time  # avoid cycle

        best_schedule: Schedule | None = None
        best_time = float("inf")
        best_name = ""
        for name in self.portfolio:
            candidate = get_algorithm(name)
            if not candidate.supports(problem.machine):
                continue
            schedule = candidate.build_schedule(problem)
            predicted = predict_schedule_time(schedule)
            if predicted < best_time:
                best_schedule, best_time, best_name = schedule, predicted, name
        assert best_schedule is not None, "portfolio cannot be empty"
        best_schedule.algorithm = f"{self.name}[{best_name}]"
        return best_schedule

    def chosen_for(self, problem: BroadcastProblem) -> str:
        """The portfolio member the model picks for ``problem``."""
        return self.build_schedule(problem).algorithm.split("[", 1)[1][:-1]
