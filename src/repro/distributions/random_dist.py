"""Seeded uniform random distribution.

Not one of the paper's named §4 distributions, but §5.3 conjectures
that "a random distribution appears to be a good choice for the T3D";
this class lets the T3D benchmarks and the dynamic-broadcasting example
test that conjecture directly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.distributions.base import SourceDistribution

__all__ = ["RandomDistribution"]


class RandomDistribution(SourceDistribution):
    """Rnd(s): ``s`` sources drawn uniformly without replacement."""

    key = "Rnd"
    label = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def place(self, rows: int, cols: int, s: int) -> List[Tuple[int, int]]:
        rng = np.random.default_rng(self.seed)
        picks = rng.choice(rows * cols, size=s, replace=False)
        return [divmod(int(idx), cols) for idx in picks]

    @property
    def name(self) -> str:
        return f"random(seed={self.seed})"
