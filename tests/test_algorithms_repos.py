"""Unit tests for the repositioning algorithms (§3, §5.2)."""

from __future__ import annotations

import pytest

from repro.core import BroadcastProblem, run_broadcast
from repro.core.algorithms import ReposLin, ReposXYDim, ReposXYSource
from repro.core.algorithms.repos import repositioning_round
from repro.distributions import DISTRIBUTIONS
from repro.machines import paragon


class TestRepositioningRound:
    def test_stable_matching_and_partiality(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (2, 5, 9), message_size=8)
        transfers, holdings = repositioning_round(problem, (2, 7, 11))
        # source 2 already sits on target 2: no transfer for it
        moved = {(t.src, t.dst) for t in transfers}
        assert moved == {(5, 7), (9, 11)}
        assert holdings[2] == frozenset({2})
        assert holdings[7] == frozenset({5})
        assert holdings[11] == frozenset({9})

    def test_message_identity_preserved(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (0, 1), message_size=8)
        transfers, holdings = repositioning_round(problem, (10, 11))
        assert holdings[10] == frozenset({0})
        assert holdings[11] == frozenset({1})
        for t in transfers:
            assert t.msgset == frozenset({t.src})

    def test_wrong_target_count_rejected(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (0, 1), message_size=8)
        with pytest.raises(ValueError):
            repositioning_round(problem, (5,))


class TestSchedules:
    @pytest.mark.parametrize("algo_cls", [ReposLin, ReposXYSource, ReposXYDim])
    def test_validate_and_deliver(self, algo_cls, square_paragon):
        for key in ("Cr", "Sq", "E", "B"):
            for s in (5, 30, 75):
                src = DISTRIBUTIONS[key].generate(square_paragon, s)
                problem = BroadcastProblem(square_paragon, src, message_size=64)
                sched = algo_cls().build_schedule(problem)
                sched.validate()

    def test_first_round_is_the_permutation(self, square_paragon):
        src = DISTRIBUTIONS["Sq"].generate(square_paragon, 25)
        problem = BroadcastProblem(square_paragon, src, message_size=64)
        sched = ReposXYSource().build_schedule(problem)
        assert sched.rounds[0].label == "reposition"
        # a permutation: distinct sources, distinct targets
        srcs = [t.src for t in sched.rounds[0]]
        dsts = [t.dst for t in sched.rounds[0]]
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)

    def test_repos_lin_supported_off_mesh(self, small_t3d):
        problem = BroadcastProblem(small_t3d, (0, 3, 17), message_size=64)
        sched = ReposLin().build_schedule(problem)
        sched.validate()

    def test_repos_xy_rejected_off_mesh(self, small_t3d):
        assert not ReposXYSource().supports(small_t3d)
        assert not ReposXYDim().supports(small_t3d)

    def test_near_ideal_input_needs_few_moves(self):
        """Repositioning an already-ideal row distribution moves little."""
        from repro.core.ideal import ideal_row_sources

        machine = paragon(16, 16)
        ideal = ideal_row_sources(machine, 32)
        problem = BroadcastProblem(machine, ideal, message_size=64)
        sched = ReposXYSource().build_schedule(problem)
        assert sched.rounds[0].label != "reposition" or len(sched.rounds[0]) == 0 or \
            len([t for t in sched.rounds[0]]) < 32


class TestPaperShapes:
    def test_repositioning_wins_on_cross(self):
        """Figure 9: large gains for the cross distribution."""
        machine = paragon(16, 16)
        src = DISTRIBUTIONS["Cr"].generate(machine, 75)
        problem = BroadcastProblem(machine, src, message_size=6144)
        t_plain = run_broadcast(problem, "Br_xy_source").elapsed_us
        t_repos = run_broadcast(problem, "Repos_xy_source").elapsed_us
        assert t_repos < 0.85 * t_plain

    def test_repositioning_loses_on_band(self):
        """Figure 9: the band is near-ideal already; repositioning costs."""
        machine = paragon(16, 16)
        src = DISTRIBUTIONS["B"].generate(machine, 75)
        problem = BroadcastProblem(machine, src, message_size=6144)
        t_plain = run_broadcast(problem, "Br_xy_source").elapsed_us
        t_repos = run_broadcast(problem, "Repos_xy_source").elapsed_us
        assert t_repos > t_plain

    def test_gain_shrinks_for_small_messages(self):
        """Figure 10: below ~1K, repositioning rarely pays."""
        machine = paragon(16, 16)
        src = DISTRIBUTIONS["Sq"].generate(machine, 75)

        def gain(L):
            problem = BroadcastProblem(machine, src, message_size=L)
            t_plain = run_broadcast(problem, "Br_xy_source").elapsed_us
            t_repos = run_broadcast(problem, "Repos_xy_source").elapsed_us
            return (t_plain - t_repos) / t_plain

        assert gain(6144) > gain(128)
