"""Unit tests for the library collectives."""

from __future__ import annotations

import pytest

from repro.machines import Machine
from repro.mpsim import collectives as coll
from repro.mpsim.collectives import xor_or_cyclic_partner
from repro.network.linear import LinearArray
from repro.errors import CommError
from tests.conftest import TEST_PARAMS


@pytest.fixture(params=[5, 8])
def machine(request):
    """Both a power-of-two and a non-power-of-two group size."""
    return Machine(LinearArray(request.param), TEST_PARAMS, kind="test")


class TestBarrier:
    def test_no_rank_leaves_before_last_enters(self, machine):
        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(500.0)  # last to enter
            entered = comm.now
            yield from coll.barrier(comm)
            left = comm.now
            return (entered, left)

        result = machine.run(program)
        latest_entry = max(entered for entered, _ in result.returns)
        for _, left in result.returns:
            assert left >= latest_entry


class TestBcast:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_all_ranks_get_payload(self, machine, root):
        def program(comm):
            data = f"r{root}" if comm.rank == root else None
            data = yield from coll.bcast(comm, data, nbytes=256, root=root)
            return data

        result = machine.run(program)
        assert all(v == f"r{root}" for v in result.returns)

    def test_binomial_message_count(self, machine):
        """A binomial tree sends exactly p - 1 messages."""

        def program(comm):
            yield from coll.bcast(comm, "x", nbytes=64, root=0)

        result = machine.run(program)
        assert result.metrics.total_messages == machine.p - 1


class TestGather:
    def test_root_collects_in_rank_order(self, machine):
        def program(comm):
            items = yield from coll.gather(comm, comm.rank * 10, nbytes=8, root=0)
            return items

        result = machine.run(program)
        assert result.returns[0] == [r * 10 for r in range(machine.p)]
        assert all(v is None for v in result.returns[1:])

    def test_gatherv_skips_zero_counts(self, machine):
        counts = [16 if r % 2 == 0 else 0 for r in range(machine.p)]

        def program(comm):
            mine = comm.rank if counts[comm.rank] else None
            items = yield from coll.gatherv(
                comm, mine, counts[comm.rank], counts, root=0
            )
            return items

        result = machine.run(program)
        gathered = result.returns[0]
        for rank in range(machine.p):
            assert gathered[rank] == (rank if counts[rank] else None)
        # Only non-zero non-root ranks sent anything.
        expected_msgs = sum(1 for r in range(1, machine.p) if counts[r])
        assert result.metrics.total_messages == expected_msgs

    def test_gatherv_count_mismatch_raises(self, machine):
        def program(comm):
            yield from coll.gatherv(comm, None, 32, [0] * comm.size, root=0)

        with pytest.raises(CommError):
            machine.run(program)


class TestAllgatherv:
    def test_everyone_gets_everything(self, machine):
        counts = [8 * (r + 1) if r != 1 else 0 for r in range(machine.p)]

        def program(comm):
            mine = f"data{comm.rank}" if counts[comm.rank] else None
            items = yield from coll.allgatherv(
                comm, mine, counts[comm.rank], counts
            )
            return tuple(items)

        result = machine.run(program)
        expected = tuple(
            f"data{r}" if counts[r] else None for r in range(machine.p)
        )
        assert all(v == expected for v in result.returns)


class TestAlltoall:
    def test_personalized_exchange(self, machine):
        p = machine.p

        def program(comm):
            payloads = [f"{comm.rank}->{d}" for d in range(p)]
            counts = [[32] * p for _ in range(p)]
            got = yield from coll.alltoall(comm, payloads, counts)
            return tuple(got)

        result = machine.run(program)
        for rank, got in enumerate(result.returns):
            assert got == tuple(f"{src}->{rank}" for src in range(p))

    def test_null_messages_skipped(self, machine):
        p = machine.p
        counts = [[0] * p for _ in range(p)]
        for d in range(p):
            counts[0][d] = 16  # only rank 0 has data

        def program(comm):
            payloads = [f"m{d}" for d in range(p)]
            got = yield from coll.alltoall(comm, payloads, counts)
            return tuple(got)

        result = machine.run(program)
        for rank, got in enumerate(result.returns):
            for src in range(p):
                if src == rank:
                    continue
                if src == 0:
                    assert got[src] == f"m{rank}"
                else:
                    assert got[src] is None
        assert result.metrics.total_messages == p - 1


class TestPartnerGeneration:
    def test_xor_for_powers_of_two(self):
        dst, src = xor_or_cyclic_partner(3, 8, 5)
        assert dst == src == 3 ^ 5

    def test_cyclic_for_other_sizes(self):
        dst, src = xor_or_cyclic_partner(2, 10, 3)
        assert dst == 5
        assert src == (2 - 3) % 10

    def test_rounds_form_permutations(self):
        for size in (7, 8, 12):
            for k in range(1, size):
                dsts = [xor_or_cyclic_partner(r, size, k)[0] for r in range(size)]
                assert sorted(dsts) == list(range(size)), (size, k)

    def test_recv_matches_send(self):
        """If i sends to dst, then dst's source partner must be i."""
        for size in (7, 8):
            for k in range(1, size):
                for rank in range(size):
                    dst, _ = xor_or_cyclic_partner(rank, size, k)
                    _, src_of_dst = xor_or_cyclic_partner(dst, size, k)
                    assert src_of_dst == rank

    def test_round_bounds_checked(self):
        with pytest.raises(CommError):
            xor_or_cyclic_partner(0, 8, 0)
        with pytest.raises(CommError):
            xor_or_cyclic_partner(0, 8, 8)
