"""Execute a validated config through the existing bench machinery.

Bit-identity is the contract here: a declarative series expands into the
**same** :class:`~repro.core.problem.BroadcastProblem` grid, in the same
order, measured through the same :func:`repro.bench.runner.measure_batch`
call the hand-written figure function made — so the measured values, the
sweep-cache keys and the rendered report text all match the original
``benchmarks/`` scripts exactly.  ``builder`` configs simply call the
original function.

The five series kinds and the figure loops they mirror:

==================  =====================================================
``sweep``           s on the x-axis, one machine/distribution
                    (Figures 3, 7, 13a — :func:`repro.bench.runner.sweep`)
``cells``           per-x overrides of machine/dist/placement/s/L
                    (Figures 4, 5, 6, 13b, §5.2 — ``measure_grid``)
``dist_curves``     distributions as curves, x-major/key-minor batch
                    (Figures 11, 12)
``machines_by_s``   machine shapes on x, source counts as curves
                    (Figure 8)
``percent_gain``    % difference of a variant vs a baseline
                    (Figures 9, 10 — ``_repos_percent_grid``)
==================  =====================================================
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.bench.runner import MeasureItem, _seeds_for, measure_batch
from repro.bench.types import FigureResult, Series
from repro.core.problem import BroadcastProblem
from repro.distributions import DISTRIBUTIONS
from repro.errors import ConfigurationError
from repro.machines import machine_from_spec
from repro.pipeline.checks import evaluate_check
from repro.pipeline.schema import CellSpec, ExperimentConfig, SeriesSpec
from repro.sweep.spec import SweepPoint

__all__ = ["run_experiment", "experiment_points"]

#: times → curves, in the grid order the items were emitted.
Collate = Callable[[List[float]], Dict[str, List[float]]]


def _per_x(value: Any, quick: bool, xs: Sequence[Any]) -> List[Any]:
    """Resolve a scalar-or-per-x Dual field against the x-axis."""
    resolved = value.get(quick)
    if isinstance(resolved, list):
        return list(resolved)
    return [resolved] * len(xs)


def _grid_collate(
    n_problems: int, algorithms: Sequence[str]
) -> Collate:
    """The problem-major / algorithm-minor collation of ``measure_grid``."""

    def collate(times: List[float]) -> Dict[str, List[float]]:
        curves: Dict[str, List[float]] = {a: [] for a in algorithms}
        it = iter(times)
        for _ in range(n_problems):
            for algorithm in algorithms:
                curves[algorithm].append(next(it))
        return curves

    return collate


def _cells_for(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[CellSpec]]:
    """The x-axis values and their (possibly derived) cell overrides."""
    xs = spec.x_values.get(quick)
    if spec.cell_axis is None:
        return xs, list(spec.cells.get(quick))
    if spec.cell_axis == "s":
        return xs, [CellSpec(s=x) for x in xs]
    if spec.cell_axis == "L":
        return xs, [CellSpec(L=x) for x in xs]
    if spec.cell_axis == "dist":
        return xs, [CellSpec(dist=x) for x in xs]
    return xs, [CellSpec(machine=x) for x in xs]


def _cell_problem(spec: SeriesSpec, cell: CellSpec) -> BroadcastProblem:
    """One grid cell resolved against the series-level defaults."""
    machine = machine_from_spec(cell.machine or spec.machine)
    s = cell.s if cell.s is not None else spec.s
    size = cell.L if cell.L is not None else spec.message_size
    placement = cell.placement or spec.placement
    if placement == "ideal_rows":
        from repro.core.ideal import ideal_row_sources

        sources = ideal_row_sources(machine, s)
    else:
        sources = DISTRIBUTIONS[cell.dist or spec.distribution].generate(
            machine, s
        )
    return BroadcastProblem(machine, sources, message_size=size)


def _expand_sweep(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    machine = machine_from_spec(spec.machine)
    dist = DISTRIBUTIONS[spec.distribution]
    s_values = spec.s_values.get(quick)
    problems = []
    for s in s_values:
        size = (
            spec.total_bytes // s
            if spec.total_bytes is not None
            else spec.message_size
        )
        problems.append(
            BroadcastProblem(
                machine, dist.generate(machine, s), message_size=max(size, 1)
            )
        )
    items = [(p, a) for p in problems for a in spec.algorithms]
    return list(s_values), items, _grid_collate(len(problems), spec.algorithms)


def _expand_cells(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    xs, cells = _cells_for(spec, quick)
    problems = [_cell_problem(spec, cell) for cell in cells]
    items = [(p, a) for p in problems for a in spec.algorithms]
    return xs, items, _grid_collate(len(problems), spec.algorithms)


def _expand_dist_curves(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    xs = spec.x_values.get(quick)
    machines = _per_x(spec.machine, quick, xs)
    s_list = (
        [int(x) for x in xs]
        if spec.s is None
        else _per_x(spec.s, quick, xs)
    )
    sizes = _per_x(spec.message_size, quick, xs)
    keys = spec.distributions
    items: List[MeasureItem] = []
    for machine_spec, s, size in zip(machines, s_list, sizes):
        machine = machine_from_spec(machine_spec)
        for key in keys:
            sources = DISTRIBUTIONS[key].generate(machine, s)
            items.append(
                (
                    BroadcastProblem(machine, sources, message_size=size),
                    spec.algorithm,
                )
            )

    def collate(times: List[float]) -> Dict[str, List[float]]:
        curves: Dict[str, List[float]] = {k: [] for k in keys}
        it = iter(times)
        for _ in xs:
            for key in keys:
                curves[key].append(next(it))
        return curves

    return list(xs), items, collate


def _expand_machines_by_s(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    xs = spec.x_values.get(quick)
    machines = spec.machines.get(quick)
    s_values = spec.s_values.get(quick)
    dist = DISTRIBUTIONS[spec.distribution]
    items: List[MeasureItem] = []
    for machine_spec in machines:
        machine = machine_from_spec(machine_spec)
        for s in s_values:
            sources = dist.generate(machine, s)
            items.append(
                (
                    BroadcastProblem(
                        machine, sources, message_size=spec.message_size
                    ),
                    spec.algorithm,
                )
            )

    def collate(times: List[float]) -> Dict[str, List[float]]:
        curves: Dict[str, List[float]] = {f"s={s}": [] for s in s_values}
        it = iter(times)
        for _ in machines:
            for s in s_values:
                curves[f"s={s}"].append(next(it))
        return curves

    return list(xs), items, collate


def _expand_percent_gain(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    machine = machine_from_spec(spec.machine)
    xs = spec.x_values.get(quick)
    keys = spec.distributions
    if spec.axis == "s":
        cells = [(key, x, spec.message_size) for key in keys for x in xs]
    else:
        cells = [(key, spec.s, x) for key in keys for x in xs]
    problems = [
        BroadcastProblem(
            machine, DISTRIBUTIONS[key].generate(machine, s), message_size=size
        )
        for key, s, size in cells
    ]
    algorithms = (spec.baseline, spec.variant)
    items = [(p, a) for p in problems for a in algorithms]

    def collate(times: List[float]) -> Dict[str, List[float]]:
        grid = _grid_collate(len(problems), algorithms)(times)
        gains = [
            100.0 * (t_plain - t_variant) / t_plain
            for t_plain, t_variant in zip(
                grid[spec.baseline], grid[spec.variant]
            )
        ]
        return {
            key: gains[i * len(xs) : (i + 1) * len(xs)]
            for i, key in enumerate(keys)
        }

    return list(xs), items, collate


_EXPANDERS = {
    "sweep": _expand_sweep,
    "cells": _expand_cells,
    "dist_curves": _expand_dist_curves,
    "machines_by_s": _expand_machines_by_s,
    "percent_gain": _expand_percent_gain,
}


def _expand_series(
    spec: SeriesSpec, quick: bool
) -> Tuple[List[Any], List[MeasureItem], Collate]:
    """One series → (x values, measurement items, collation)."""
    return _EXPANDERS[spec.kind](spec, quick)


def _measure_series(spec: SeriesSpec, quick: bool) -> Series:
    xs, items, collate = _expand_series(spec, quick)
    times = measure_batch(items, contention=spec.contention)
    return Series(
        title=spec.title,
        x_label=spec.x_label,
        x_values=xs,
        curves=collate(times),
        y_label=spec.y_label,
    )


def run_experiment(
    config: ExperimentConfig, quick: bool = False
) -> FigureResult:
    """Measure one experiment and evaluate its shape checks.

    Declarative configs expand and measure through
    :func:`repro.bench.runner.measure_batch` (so ``--jobs``, the on-disk
    cache and the engine selection all apply via the installed
    :class:`~repro.sweep.executor.SweepExecutor`); ``builder`` configs
    dispatch to the named figure function.  Either way the return value
    is the familiar :class:`~repro.bench.types.FigureResult`.
    """
    if config.kind == "builder":
        module_name, _, attr = config.builder.partition(":")
        try:
            builder = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise ConfigurationError(
                f"{config.path or config.id}: builder {config.builder!r} "
                f"failed to import: {exc}"
            ) from exc
        return builder(quick)
    result = FigureResult(config.title, config.description)
    for spec in config.series:
        result.series.append(_measure_series(spec, quick))
    where = config.path or config.id
    for i, check in enumerate(config.checks):
        result.checks.append(
            evaluate_check(
                check, result.series, context=f"{where}: [checks#{i}]"
            )
        )
    result.notes.extend(config.notes)
    return result


def experiment_points(
    config: ExperimentConfig, quick: bool = False
) -> List[SweepPoint]:
    """Every :class:`SweepPoint` a declarative experiment will evaluate.

    This is the exact per-seed expansion :func:`measure_batch` performs
    (T3D machines fan out over the paper's seed set, stable-rank
    machines use seed 0), so feeding these points to
    :func:`repro.sweep.distributed.run_sharded` pre-warms precisely the
    cache entries ``python -m repro report`` will hit.  Builder
    experiments measure through their own imperative code and are not
    expressible as a point list; they raise.
    """
    config.require_declarative()
    points: List[SweepPoint] = []
    for spec in config.series:
        _xs, items, _collate = _expand_series(spec, quick)
        for problem, algorithm in items:
            points.extend(
                SweepPoint.from_problem(
                    problem, algorithm, seed=seed, contention=spec.contention
                )
                for seed in _seeds_for(problem.machine)
            )
    return points
