"""Ablation: dimension-aware ideal row placement (DESIGN.md §5.4)."""

from __future__ import annotations

from benchmarks.conftest import run_config


def test_ablation_ideal_rows(benchmark):
    """Searched row positions beat naive even spacing (the R(20) case)."""
    run_config(benchmark, "ablation-ideal-rows")
