"""Route-cache correctness: memoized paths vs. uncached construction.

``Topology.route_links`` memoizes link-id paths (all pairs precomputed
at finalize for small topologies, bounded FIFO memo for large ones).
These tests pin the cached path against ``_build_route`` — the seed
code's uncached construction, kept verbatim for exactly this purpose —
and check the cache never changes observable behavior: bounds errors,
immutability, and sharing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.network import topology as topology_mod
from repro.network.fabric import Fabric
from repro.network.hypercube import Hypercube
from repro.network.linear import LinearArray
from repro.network.mesh import Mesh2D
from repro.network.torus import Torus3D

TOPOLOGIES = [
    LinearArray(7),
    Mesh2D(4, 4),
    Mesh2D(3, 5),
    Hypercube(4),
    Torus3D(2, 3, 4),
]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=repr)
def test_cached_routes_match_uncached_construction(topo):
    """Every cached pair equals the seed-code route, for all pairs."""
    n = topo.num_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                assert topo.route_links(src, dst) == ()
                assert topo.route(src, dst) == []
            else:
                cached = topo.route_links(src, dst)
                assert cached == topo._build_route(src, dst)
                assert topo.route(src, dst) == list(cached)


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=repr)
def test_route_links_returns_shared_immutable_tuple(topo):
    first = topo.route_links(0, topo.num_nodes - 1)
    second = topo.route_links(0, topo.num_nodes - 1)
    assert isinstance(first, tuple)
    assert first is second  # memoized, not rebuilt


def test_out_of_range_does_not_alias_cached_pair():
    """Flat src*n+dst keys must not let bad ids hit a valid entry.

    On a 3-node line, key(0, 5) == key(1, 2): without a bounds guard
    the precomputed cache would silently return node 1's route to
    node 2 for the invalid query (0, 5).
    """
    line = LinearArray(3)
    line.route_links(1, 2)  # ensure the aliasing target is cached
    with pytest.raises(TopologyError):
        line.route_links(0, 5)
    with pytest.raises(TopologyError):
        line.route(0, 5)
    with pytest.raises(TopologyError):
        line.route_links(-1, 2)


def test_large_topology_uses_bounded_cache(monkeypatch):
    """>32-node topologies memoize lazily and evict at the cap."""
    monkeypatch.setattr(topology_mod, "_ROUTE_CACHE_MAX", 8)
    mesh = Mesh2D(6, 6)  # 36 nodes > _PRECOMPUTE_MAX_NODES
    assert mesh._route_cache_bounded
    assert mesh._route_cache == {}
    for dst in range(1, 21):
        assert mesh.route_links(0, dst) == mesh._build_route(0, dst)
    assert len(mesh._route_cache) <= 8
    # Evicted entries are rebuilt correctly on re-query.
    assert mesh.route_links(0, 1) == mesh._build_route(0, 1)


def test_small_topology_precomputes_all_pairs():
    mesh = Mesh2D(4, 4)
    assert not mesh._route_cache_bounded
    n = mesh.num_nodes
    assert len(mesh._route_cache) == n * (n - 1)


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=repr)
def test_neighbors_served_from_adjacency_table(topo):
    for node in range(topo.num_nodes):
        expected = sorted(
            v for (u, v) in topo._wire_endpoints if u == node
        )
        assert topo.neighbors(node) == expected


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1,
        max_size=30,
    ),
    nbytes=st.integers(0, 4096),
)
def test_fabric_transfers_never_mutate_cached_paths(pairs, nbytes):
    """The fabric shares the memo's tuples; reservations must not
    corrupt them, no matter the transfer order or repetition."""
    mesh = Mesh2D(4, 4)
    fabric = Fabric(mesh, t_byte=0.01, t_hop=0.1, route_setup=0.5)
    snapshots = {
        (src, dst): mesh.route_links(src, dst)
        for src, dst in pairs
        if src != dst
    }
    now = 0.0
    for src, dst in pairs:
        stats = fabric.transfer(src, dst, nbytes, now)
        now = stats.finish_time
    for (src, dst), path in snapshots.items():
        assert mesh.route_links(src, dst) is path
        assert path == mesh._build_route(src, dst)
