"""Repositioning algorithms (§3): permute, then broadcast on an ideal input.

A repositioning algorithm is composed from a non-repositioning
algorithm and an ideal input distribution for it on the given machine:
first a *partial permutation* moves every source's message to its slot
in the ideal distribution (one round of concurrent point-to-point
sends; sources already in place send nothing), then the target
algorithm broadcasts from the ideal distribution.

Following §5.2, the current implementations "do not check whether the
initial distribution is close to an ideal distribution and always
reposition" — quantifying when that loses (the band distribution, large
s, tiny messages) is exactly what Figures 9 and 10 measure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from repro.core import ideal
from repro.core.algorithms.base import BroadcastAlgorithm, register
from repro.core.algorithms.br_xy import build_xy_schedule, source_line_maxima
from repro.core.algorithms.common import GridView, halving_rounds
from repro.core.problem import BroadcastProblem
from repro.core.schedule import Schedule, Transfer

__all__ = ["ReposLin", "ReposXYSource", "ReposXYDim", "repositioning_round"]


def repositioning_round(
    problem: BroadcastProblem, targets: Sequence[int]
) -> Tuple[Tuple[Transfer, ...], Dict[int, FrozenSet[int]]]:
    """The permutation round moving sources onto ``targets``.

    Source *j* (in sorted rank order) moves to target *j* (sorted), a
    stable matching that keeps the permutation partial whenever source
    and target sets overlap.  Returns the transfers plus the post-round
    holdings map (target rank → original message ids), which the target
    algorithm's phase builders consume directly — message identity is
    preserved, only position changes.
    """
    sources = problem.sources
    target_list = tuple(sorted(targets))
    if len(target_list) != len(sources):
        raise ValueError(
            f"need {len(sources)} targets, got {len(target_list)}"
        )
    empty: FrozenSet[int] = frozenset()
    holdings: Dict[int, FrozenSet[int]] = {
        rank: empty for rank in range(problem.p)
    }
    transfers = []
    for src, dst in zip(sources, target_list):
        if src == dst:
            holdings[dst] = holdings[dst] | frozenset((src,))
        else:
            transfers.append(Transfer(src, dst, frozenset((src,))))
    for t in transfers:
        holdings[t.dst] = holdings[t.dst] | t.msgset
    # Original sources keep their own message (sends copy, not move) —
    # but the broadcast phase treats only the targets as holders, so we
    # deliberately do not add them back: this reproduces the paper's
    # model where the moved message *is* the broadcast payload.  The
    # original source receives its message back through the broadcast.
    return tuple(transfers), holdings


@register
class ReposLin(BroadcastAlgorithm):
    """Repositioning onto ``Br_Lin``'s ideal linear placement."""

    name = "Repos_Lin"
    requires_mesh = False

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        targets = ideal.ideal_linear_sources(problem.machine, problem.s)
        schedule = Schedule(problem, algorithm=self.name)
        transfers, holdings = repositioning_round(problem, targets)
        with schedule.span("reposition"):
            schedule.add_round(transfers, label="reposition")
        order = problem.machine.linear_order()
        with schedule.span("halving"):
            for idx, rnd in enumerate(halving_rounds(order, holdings)):
                schedule.add_round(rnd, label=f"halving-{idx}")
        return schedule


class _ReposXY(BroadcastAlgorithm):
    """Shared machinery for the xy repositioning algorithms."""

    requires_mesh = True

    def _rows_first(self, problem: BroadcastProblem, view: GridView) -> bool:
        raise NotImplementedError

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        self.check_supported(problem)
        rows, cols = problem.machine.mesh_shape
        view = GridView.full_machine(rows, cols)
        targets = ideal.ideal_row_sources(problem.machine, problem.s)
        schedule = Schedule(problem, algorithm=self.name)
        transfers, holdings = repositioning_round(problem, targets)
        with schedule.span("reposition"):
            schedule.add_round(transfers, label="reposition")
        ideal_problem = problem.replace_sources(targets)
        rows_first = self._rows_first(ideal_problem, view)
        return build_xy_schedule(
            problem, view, rows_first, self.name, schedule, holdings
        )


@register
class ReposXYSource(_ReposXY):
    """Repositioning onto the ideal row distribution, then Br_xy_source."""

    name = "Repos_xy_source"

    def _rows_first(self, problem: BroadcastProblem, view: GridView) -> bool:
        # Dimension choice is made on the *ideal* (post-permutation)
        # distribution, as Br_xy_source would see it.
        max_r, max_c = source_line_maxima(problem, view)
        return max_r < max_c


@register
class ReposXYDim(_ReposXY):
    """Repositioning onto the ideal row distribution, then Br_xy_dim."""

    name = "Repos_xy_dim"

    def _rows_first(self, problem: BroadcastProblem, view: GridView) -> bool:
        rows, cols = problem.machine.mesh_shape
        return rows >= cols
