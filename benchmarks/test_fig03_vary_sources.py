"""Figure 3: Paragon, all algorithms, source count sweep."""

from __future__ import annotations

from benchmarks.conftest import run_config


def test_fig03(benchmark):
    """Figure 3: Paragon, all algorithms, source count sweep."""
    run_config(benchmark, "fig3")
