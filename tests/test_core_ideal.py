"""Unit tests for the ideal-distribution search."""

from __future__ import annotations

import pytest

from repro.core.ideal import (
    best_line_positions,
    ideal_linear_sources,
    ideal_row_sources,
    left_diagonal_sources,
)
from repro.core.structure import estimate_halving_time
from repro.errors import DistributionError
from repro.machines import paragon, t3d


class TestBestLinePositions:
    def test_bounds_checked(self):
        with pytest.raises(DistributionError):
            best_line_positions(10, 0)
        with pytest.raises(DistributionError):
            best_line_positions(10, 11)

    def test_k_equals_n(self):
        assert best_line_positions(6, 6) == (0, 1, 2, 3, 4, 5)

    def test_returns_k_distinct_in_range(self):
        for n, k in ((10, 2), (16, 5), (13, 7), (100, 9)):
            pos = best_line_positions(n, k)
            assert len(pos) == k
            assert len(set(pos)) == k
            assert all(0 <= x < n for x in pos)

    def test_avoids_halving_partners_on_10_2(self):
        """The paper's example: {0, 5} pairs at iteration 1 and wastes
        it; the searched placement must do strictly better."""
        found = best_line_positions(10, 2)
        assert estimate_halving_time(10, found) < estimate_halving_time(
            10, (0, 5)
        )
        # the two positions must not be halving partners (distance 5)
        a, b = found
        assert b - a != 5

    def test_beats_even_spacing_for_power_of_two(self):
        found = best_line_positions(16, 4)
        even = (0, 4, 8, 12)  # every position pairs with another source
        assert estimate_halving_time(16, found) <= estimate_halving_time(
            16, even
        )

    def test_cached_and_deterministic(self):
        assert best_line_positions(12, 5) == best_line_positions(12, 5)


class TestIdealGenerators:
    def test_ideal_rows_are_full_rows(self):
        machine = paragon(10, 10)
        ranks = ideal_row_sources(machine, 30)
        assert len(ranks) == 30
        by_row = {}
        for rank in ranks:
            by_row.setdefault(rank // 10, []).append(rank)
        assert len(by_row) == 3
        assert sorted(len(v) for v in by_row.values()) == [10, 10, 10]

    def test_ideal_rows_partial_last(self):
        machine = paragon(10, 10)
        ranks = ideal_row_sources(machine, 25)
        by_row = {}
        for rank in ranks:
            by_row.setdefault(rank // 10, []).append(rank)
        assert sorted(len(v) for v in by_row.values()) == [5, 10, 10]

    def test_ideal_rows_avoid_partner_rows_on_10(self):
        """Rows 0 and 5 are halving partners on a 10-row mesh — the
        searched ideal must avoid that pairing (the R(20) observation)."""
        machine = paragon(10, 10)
        ranks = ideal_row_sources(machine, 20)
        rows = sorted({rank // 10 for rank in ranks})
        assert len(rows) == 2
        assert rows[1] - rows[0] != 5

    def test_ideal_linear_maps_through_snake(self):
        machine = paragon(4, 5)
        ranks = ideal_linear_sources(machine, 3)
        assert len(set(ranks)) == 3
        assert all(0 <= r < 20 for r in ranks)

    def test_left_diagonal_delegates_to_dl(self):
        machine = paragon(10, 10)
        assert len(left_diagonal_sources(machine, 15)) == 15

    def test_generators_work_on_t3d_logical_grid(self):
        machine = t3d(64)
        for fn in (ideal_row_sources, ideal_linear_sources, left_diagonal_sources):
            ranks = fn(machine, 12)
            assert len(set(ranks)) == 12

    def test_s_bounds(self):
        machine = paragon(4, 4)
        with pytest.raises(DistributionError):
            ideal_row_sources(machine, 0)
        with pytest.raises(DistributionError):
            ideal_linear_sources(machine, 17)


class TestEstimator:
    def test_more_sources_not_faster_for_fixed_L(self):
        t1 = estimate_halving_time(16, (0,))
        t8 = estimate_halving_time(16, tuple(range(8)))
        assert t8 > t1  # more data to merge and move

    def test_search_beats_even_spacing(self):
        """Evenly spaced power-of-two placements pair source with source
        at every level; the search must strictly improve on them."""
        spread = estimate_halving_time(64, best_line_positions(64, 8))
        even = estimate_halving_time(64, tuple(range(0, 64, 8)))
        assert spread < even

    def test_zero_sources_edge(self):
        # degenerate but defined: nothing moves
        assert estimate_halving_time(8, ()) == 0.0
