"""Figure 12: T3D fixed-total source sweep."""

from __future__ import annotations

from benchmarks.conftest import run_config


def test_fig12(benchmark):
    """Figure 12: T3D fixed-total source sweep."""
    run_config(benchmark, "fig12")
