"""Structural (engine-free) analysis of schedules and halving patterns.

Two tools live here:

* :func:`analyze_schedule` — per-round actives / new-source counts /
  message-length profiles for a built schedule.  This is the
  distribution-dependent half of Figure 2, computed statically; tests
  cross-check it against the executor's measured metrics.
* :func:`estimate_halving_time` — a fast LogP-style finish-time
  estimator for the halving pattern given source *positions* on a
  line.  The ideal-distribution search (:mod:`repro.core.ideal`) ranks
  thousands of candidate placements with it, which would be far too
  slow through the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.core.algorithms.common import halving_pairs
from repro.core.schedule import Schedule

__all__ = ["RoundProfile", "ScheduleProfile", "analyze_schedule", "estimate_halving_time"]


@dataclass(frozen=True)
class RoundProfile:
    """Static per-round statistics."""

    index: int
    label: str
    transfers: int
    active_ranks: int
    new_holders: int
    max_transfer_bytes: int
    total_bytes: int


@dataclass(frozen=True)
class ScheduleProfile:
    """Static whole-schedule statistics (Figure 2's distribution side)."""

    rounds: Tuple[RoundProfile, ...]
    av_act_proc: float
    max_ops_per_rank: int
    total_transfers: int

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def analyze_schedule(schedule: Schedule) -> ScheduleProfile:
    """Compute per-round profiles by replaying holdings statically."""
    problem = schedule.problem
    nbytes = problem.nbytes
    holdings: List[Set[int]] = [set(h) for h in problem.initial_holdings()]
    holders = {rank for rank, h in enumerate(holdings) if h}
    profiles: List[RoundProfile] = []
    for idx, rnd in enumerate(schedule.rounds):
        active = set()
        sizes = []
        for t in rnd:
            active.add(t.src)
            active.add(t.dst)
            sizes.append(nbytes(t.msgset))
        for t in rnd:
            holdings[t.dst] |= t.msgset
        new_holders = {
            rank for rank, h in enumerate(holdings) if h
        } - holders
        holders |= new_holders
        profiles.append(
            RoundProfile(
                index=idx,
                label=rnd.label,
                transfers=len(rnd),
                active_ranks=len(active),
                new_holders=len(new_holders),
                max_transfer_bytes=max(sizes, default=0),
                total_bytes=sum(sizes),
            )
        )
    av_act = (
        sum(p.active_ranks for p in profiles) / len(profiles)
        if profiles
        else 0.0
    )
    ops = schedule.ops_by_rank()
    return ScheduleProfile(
        rounds=tuple(profiles),
        av_act_proc=av_act,
        max_ops_per_rank=max(ops.values(), default=0),
        total_transfers=schedule.num_transfers,
    )


def estimate_halving_time(
    n: int,
    positions: Sequence[int],
    *,
    overhead: float = 70.0,
    per_byte: float = 0.017,
    message_size: int = 2048,
) -> float:
    """LogP-style completion-time estimate of the halving broadcast.

    ``positions`` are the source slots on a line of ``n`` positions;
    every source carries ``message_size`` bytes.  The estimate tracks a
    per-position ready time: an exchanging pair finishes at
    ``max(ready_a, ready_b) + overhead + bytes_moved * per_byte``.
    Default constants approximate the Paragon's overhead-to-bandwidth
    ratio; the *ranking* of placements (which is all the ideal search
    needs) is insensitive to their exact values.
    """
    source_set = set(positions)
    ready = [0.0] * n
    units = [message_size if i in source_set else 0 for i in range(n)]
    for pairs in halving_pairs(n):
        snapshot_units = list(units)
        snapshot_ready = list(ready)
        for a, b, one_way in pairs:
            ua, ub = snapshot_units[a], snapshot_units[b]
            if ua == 0 and ub == 0:
                continue
            moved = ua if one_way else max(ua, ub)
            done = (
                max(snapshot_ready[a], snapshot_ready[b])
                + overhead
                + moved * per_byte
            )
            ready[a] = max(ready[a], done)
            ready[b] = max(ready[b], done)
            gained_b = ua
            gained_a = 0 if one_way else ub
            units[a] = max(units[a], snapshot_units[a] + gained_a)
            units[b] = max(units[b], snapshot_units[b] + gained_b)
    return max(ready)
