"""Measurement primitives shared by every experiment.

The paper reports times "obtained over multiple runs and averaged over
four best runs" (§5).  On the simulated Paragon a run is bit-identical
across seeds (identity rank mapping), so one run suffices; on the T3D
the seed draws a new random virtual→physical mapping — production
scheduling — so :func:`measure_problem` runs several seeds and averages
the best, mirroring the paper's methodology.

Since PR 1 every measurement routes through a
:class:`~repro.sweep.executor.SweepExecutor`: figures batch their whole
grid into one :func:`measure_batch` / :func:`measure_grid` call, the
executor fans the points out over worker processes (``--jobs`` /
``$REPRO_SWEEP_JOBS``) and memoizes results in the on-disk cache.  The
default executor is serial and uncached, so library behaviour without
explicit configuration is byte-identical to the original serial loop.

Problems whose machine has no canonical spec (custom parameters — the
ablations) and algorithm *instances* (rather than registry names) cannot
be shipped to worker processes; they transparently fall back to direct
in-process evaluation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.algorithms.base import BroadcastAlgorithm
from repro.core.problem import BroadcastProblem
from repro.core.runner import BroadcastResult, run_broadcast
from repro.distributions.base import SourceDistribution
from repro.machines.machine import Machine
from repro.sweep.executor import SweepExecutor
from repro.sweep.spec import SweepPoint

__all__ = [
    "measure_problem",
    "measure_batch",
    "measure_grid",
    "run_batch",
    "sweep",
    "active_executor",
    "use_executor",
    "T3D_SEEDS",
    "T3D_BEST",
]

#: Seeds drawn for machines with seed-dependent mappings (the T3D).
T3D_SEEDS = (0, 1, 2, 3, 4)
#: How many of the best runs are averaged (paper: "four best runs").
T3D_BEST = 4

Algorithm = Union[str, BroadcastAlgorithm]
#: One measurement request: a problem and the algorithm to time on it.
MeasureItem = Tuple[BroadcastProblem, Algorithm]

#: Executor installed by :func:`use_executor`; ``None`` means "build a
#: fresh default" (serial unless ``$REPRO_SWEEP_JOBS`` says otherwise,
#: no cache) per batch.
_installed_executor: Optional[SweepExecutor] = None


def active_executor() -> SweepExecutor:
    """The executor measurements currently route through."""
    if _installed_executor is not None:
        return _installed_executor
    return SweepExecutor()


@contextmanager
def use_executor(executor: SweepExecutor) -> Iterator[SweepExecutor]:
    """Route all measurements inside the ``with`` body through ``executor``.

    This is how the CLIs wire ``--jobs`` / ``--cache-dir`` / ``--no-cache``
    into figure functions without threading an argument through every
    experiment signature.
    """
    global _installed_executor
    previous = _installed_executor
    _installed_executor = executor
    try:
        yield executor
    finally:
        _installed_executor = previous


def _seeds_for(machine: Machine) -> Tuple[int, ...]:
    """The run seeds the paper's methodology demands for this machine."""
    return (0,) if machine.topology_stable_ranks else T3D_SEEDS


def _aggregate_ms(times_ms: List[float]) -> float:
    """Average of the best runs (single-seed machines: the one run)."""
    if len(times_ms) == 1:
        return times_ms[0]
    best = sorted(times_ms)[:T3D_BEST]
    return sum(best) / len(best)


def _measure_direct(
    problem: BroadcastProblem, algorithm: Algorithm, contention: bool
) -> float:
    """In-process fallback for problems the executor cannot ship."""
    times = [
        run_broadcast(
            problem, algorithm, seed=seed, contention=contention
        ).elapsed_ms
        for seed in _seeds_for(problem.machine)
    ]
    return _aggregate_ms(times)


def measure_batch(
    items: Sequence[MeasureItem], *, contention: bool = True
) -> List[float]:
    """Completion times in milliseconds for a whole grid of measurements.

    The workhorse of every figure: all sweep-able items expand into
    per-seed :class:`~repro.sweep.spec.SweepPoint`\\ s and go through the
    active executor in **one** batch — maximum fan-out, one cache pass —
    then collapse back to the paper's best-seeds average per item.
    Returns one value per item, in order.
    """
    points: List[SweepPoint] = []
    # Per item: (start, count) into ``points``, or None = direct fallback.
    plan: List[Optional[Tuple[int, int]]] = []
    for problem, algorithm in items:
        if problem.machine.spec is not None and isinstance(algorithm, str):
            seeds = _seeds_for(problem.machine)
            plan.append((len(points), len(seeds)))
            points.extend(
                SweepPoint.from_problem(
                    problem, algorithm, seed=seed, contention=contention
                )
                for seed in seeds
            )
        else:
            plan.append(None)

    results: List[BroadcastResult] = (
        active_executor().run(points) if points else []
    )

    out: List[float] = []
    for (problem, algorithm), entry in zip(items, plan):
        if entry is None:
            out.append(_measure_direct(problem, algorithm, contention))
        else:
            start, count = entry
            out.append(
                _aggregate_ms(
                    [r.elapsed_ms for r in results[start : start + count]]
                )
            )
    return out


def measure_grid(
    problems: Sequence[BroadcastProblem],
    algorithms: Sequence[Algorithm],
    *,
    contention: bool = True,
) -> Dict[str, List[float]]:
    """Curves of one y-value per problem, for several algorithms.

    ``problems`` is the x-axis (one problem per x value); the result maps
    each algorithm's name to its curve.  Everything is measured in a
    single executor batch.
    """
    times = measure_batch(
        [(problem, algorithm) for problem in problems for algorithm in algorithms],
        contention=contention,
    )
    curves: Dict[str, List[float]] = {_name(a): [] for a in algorithms}
    it = iter(times)
    for _problem in problems:
        for algorithm in algorithms:
            curves[_name(algorithm)].append(next(it))
    return curves


def run_batch(
    items: Sequence[MeasureItem],
    *,
    seed: int = 0,
    contention: bool = True,
) -> List[BroadcastResult]:
    """Full :class:`BroadcastResult`\\ s (metrics included) for a grid.

    Single-seed semantics — the metric-table experiments (Figure 2) want
    counters from one deterministic run, not a seed average.  Items the
    executor cannot ship are evaluated directly.
    """
    points: List[SweepPoint] = []
    slots: List[Optional[int]] = []
    for problem, algorithm in items:
        if problem.machine.spec is not None and isinstance(algorithm, str):
            slots.append(len(points))
            points.append(
                SweepPoint.from_problem(
                    problem, algorithm, seed=seed, contention=contention
                )
            )
        else:
            slots.append(None)
    results = active_executor().run(points) if points else []
    return [
        results[slot]
        if slot is not None
        else run_broadcast(problem, algorithm, seed=seed, contention=contention)
        for (problem, algorithm), slot in zip(items, slots)
    ]


def measure_problem(
    problem: BroadcastProblem,
    algorithm: Algorithm,
    *,
    contention: bool = True,
) -> float:
    """Completion time in milliseconds, averaged over the best seeds."""
    return measure_batch([(problem, algorithm)], contention=contention)[0]


def sweep(
    machine: Machine,
    algorithms: Sequence[Algorithm],
    distribution: SourceDistribution,
    s_values: Iterable[int],
    message_size: int,
    *,
    total_bytes: int | None = None,
    contention: bool = True,
) -> Dict[str, List[float]]:
    """Curves of time-vs-s for several algorithms on one distribution.

    With ``total_bytes`` set, the per-source message size is
    ``total_bytes // s`` (the fixed-total experiments of Figures 7/12);
    otherwise every source sends ``message_size`` bytes.
    """
    problems: List[BroadcastProblem] = []
    for s in s_values:
        size = total_bytes // s if total_bytes is not None else message_size
        sources = distribution.generate(machine, s)
        problems.append(
            BroadcastProblem(machine, sources, message_size=max(size, 1))
        )
    return measure_grid(problems, algorithms, contention=contention)


def _name(algorithm: Algorithm) -> str:
    return algorithm if isinstance(algorithm, str) else algorithm.name
