"""Measurement primitives: best-of-N timing and machine calibration.

Wall-clock microbenchmarks are noisy; two choices keep the numbers
stable enough to gate CI on:

* **best-of-N** — the minimum over ``repeats`` runs estimates the cost
  with the least scheduler/GC interference (the standard ``timeit``
  argument: noise is strictly additive).
* **calibration** — a fixed pure-Python workload timed on the same
  interpreter gives a machine-speed proxy, so reports from different
  hosts compare on *normalized* time (see
  :func:`repro.perf.suite.compare_reports`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["BenchTiming", "bench", "calibrate"]


@dataclass(frozen=True)
class BenchTiming:
    """Timing summary of one benchmark.

    ``best_s`` is the minimum wall time over all measured repeats (the
    number comparisons use); ``mean_s`` the arithmetic mean, kept for
    noise diagnostics.
    """

    best_s: float
    mean_s: float
    repeats: int


def bench(
    fn: Callable[[], Any],
    *,
    repeats: int = 5,
    warmup: int = 1,
    setup: Optional[Callable[[], Any]] = None,
) -> BenchTiming:
    """Time ``fn()`` best-of-``repeats`` after ``warmup`` discarded runs.

    ``setup`` (when given) runs before every measured repeat, outside
    the timed region — used to reset caches or rebuild consumed state.
    """
    if repeats < 1:
        raise ValueError(f"need at least one repeat, got {repeats}")
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    times = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return BenchTiming(
        best_s=min(times), mean_s=sum(times) / len(times), repeats=repeats
    )


def calibrate(loops: int = 100_000, repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload (machine-speed proxy).

    The workload mixes integer arithmetic with tuple/list allocation
    and heap churn, mirroring the simulator event loop's interpreter
    profile — on shared hosts, allocator-heavy code slows down under
    co-tenant memory pressure that a pure-integer spin never sees.
    Best-of-``repeats``, so a background blip does not skew the
    normalization.
    """
    import heapq

    def spin() -> float:
        heap: list = []
        push, pop = heapq.heappush, heapq.heappop
        acc = 0
        when = 0.0
        for i in range(loops):
            acc = (acc * 31 + i) & 0xFFFFFFFF
            push(heap, (when + (acc & 7), i, (i, acc)))
            if len(heap) > 64:
                when = pop(heap)[0] + 0.5
        return when

    return bench(spin, repeats=repeats, warmup=1).best_s
