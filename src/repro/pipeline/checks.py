"""Shape-check assertions: a restricted expression language over series.

A declarative config states its DESIGN.md shape criteria as small
Python expressions evaluated against the measured
:class:`~repro.bench.types.Series` list.  The language is validated at
**load time** — :func:`compile_expr` parses the expression and walks its
AST against a whitelist (no attribute access, no imports, no dunder
names, only known helper/builtin names), so a typo'd helper or a
smuggled ``__import__`` fails when the config is read, not mid-sweep.

Evaluation helpers (bound per check to the experiment's series list;
``series = N`` in the check selects the default series):

========================  =============================================
``at(curve, x)``          y-value of ``curve`` at x-axis value ``x``
``curve(name)``           the full y-list of ``curve``
``xs``                    the x-axis values of the check's series
``v(i, curve, x)``        ``at`` against series ``i``
``curve_of(i, name)``     ``curve`` against series ``i``
``xs_of(i)``              ``xs`` of series ``i``
========================  =============================================

plus the pure builtins ``min max abs all any len sum sorted zip round
range enumerate float int str``.  ``detail`` expressions (usually
f-strings) use the same language and render the check's detail text.
"""

from __future__ import annotations

import ast
from types import CodeType
from typing import Any, Dict, List, Sequence, Set

from repro.bench.types import Check, Series
from repro.errors import ConfigurationError
from repro.pipeline.schema import CheckSpec

__all__ = ["compile_expr", "evaluate_check", "ALLOWED_NAMES"]

#: Builtins exposed to check expressions (pure, total on their domains).
_BUILTINS: Dict[str, Any] = {
    "min": min,
    "max": max,
    "abs": abs,
    "all": all,
    "any": any,
    "len": len,
    "sum": sum,
    "sorted": sorted,
    "zip": zip,
    "round": round,
    "range": range,
    "enumerate": enumerate,
    "float": float,
    "int": int,
    "str": str,
}

#: Series helpers (bound at evaluation time) + builtins + ``xs``.
ALLOWED_NAMES: Set[str] = (
    {"at", "curve", "v", "curve_of", "xs", "xs_of"} | set(_BUILTINS)
)

#: AST node types an expression may contain.  Notably absent:
#: ``Attribute`` (no method calls, no ``__class__`` escapes),
#: ``Lambda``, ``Await``, ``NamedExpr``, ``Dict``/``Set`` displays.
_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
    ast.Mod, ast.Pow,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.In, ast.NotIn,
    ast.Call, ast.keyword,
    ast.IfExp,
    ast.Name, ast.Load, ast.Store,
    ast.Constant,
    ast.Tuple, ast.List,
    ast.Subscript, ast.Slice,
    ast.GeneratorExp, ast.ListComp, ast.comprehension,
    ast.JoinedStr, ast.FormattedValue,
)


def _bound_names(tree: ast.AST) -> Set[str]:
    """Names bound by comprehension targets inside ``tree``."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def compile_expr(expr: str, *, context: str = "expression") -> CodeType:
    """Parse, whitelist-check and compile one check expression.

    Raises :class:`~repro.errors.ConfigurationError` naming the
    ``context`` (the loader passes ``"<file>: [checks#N].expr"``) when
    the expression is syntactically invalid, contains a disallowed
    construct, or references an unknown name.

    >>> code = compile_expr("min(xs) < max(xs)")
    >>> eval(code, {"__builtins__": {}}, {"xs": [1, 2], "min": min, "max": max})
    True
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(f"{context}: syntax error: {exc.msg}") from None
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise ConfigurationError(
                f"{context}: disallowed construct "
                f"{type(node).__name__!r} in {expr!r}"
            )
    bound = _bound_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in ALLOWED_NAMES and node.id not in bound:
                raise ConfigurationError(
                    f"{context}: unknown name {node.id!r} "
                    f"(allowed: {', '.join(sorted(ALLOWED_NAMES))})"
                )
    return compile(tree, filename=f"<{context}>", mode="eval")


def _namespace(series: Sequence[Series], default: int) -> Dict[str, Any]:
    """The evaluation namespace for a check bound to ``series[default]``."""
    base = series[default]

    def at(curve: str, x: Any) -> float:
        return base.value(curve, x)

    def curve(name: str) -> List[float]:
        return base.curves[name]

    def v(i: int, curve_name: str, x: Any) -> float:
        return series[i].value(curve_name, x)

    def curve_of(i: int, name: str) -> List[float]:
        return series[i].curves[name]

    def xs_of(i: int) -> List[Any]:
        return list(series[i].x_values)

    names: Dict[str, Any] = dict(_BUILTINS)
    names.update(
        at=at, curve=curve, v=v, curve_of=curve_of,
        xs=list(base.x_values), xs_of=xs_of,
    )
    return names


def evaluate_check(
    spec: CheckSpec, series: Sequence[Series], *, context: str = "check"
) -> Check:
    """Evaluate one :class:`CheckSpec` against measured series.

    Returns the same :class:`~repro.bench.types.Check` record the
    hand-written figure functions build, so reports and verdicts are
    rendered identically either way.
    """
    if not 0 <= spec.series < len(series):
        raise ConfigurationError(
            f"{context}: series index {spec.series} out of range "
            f"(experiment has {len(series)} series)"
        )
    names = _namespace(series, spec.series)
    try:
        # Names go in *globals*: comprehensions in an eval'd expression
        # run in their own scope, which resolves free names through the
        # globals mapping, never through an outer locals dict.
        names["__builtins__"] = {}
        if spec.type == "ratio_range":
            num = series[spec.series].value(spec.curve, spec.x_num)
            den = series[spec.series].value(spec.curve, spec.x_den)
            passed = bool(spec.lo <= num / den <= spec.hi)
        else:  # "expr" — the only other type the loader admits
            code = compile_expr(spec.expr, context=f"{context}.expr")
            passed = bool(eval(code, names))
        detail = ""
        if spec.detail is not None:
            detail_code = compile_expr(spec.detail, context=f"{context}.detail")
            detail = str(eval(detail_code, names))
    except ConfigurationError:
        raise
    except Exception as exc:  # missing curve/x value: a config defect
        raise ConfigurationError(
            f"{context}: evaluation failed for "
            f"{spec.description!r}: {exc}"
        ) from exc
    return Check(spec.description, passed, detail)
