"""Lowering: a :class:`~repro.core.schedule.Schedule` as flat arrays.

The lowering consumes the same :meth:`Schedule.lowered` per-rank round
plans as the generator executor, then flattens them into:

* parallel per-send arrays — source, destination, byte count, round —
  with every per-send cost the replay needs (sender overhead, receiver
  overhead + combining copy) resolved by **vectorized** numpy
  arithmetic over per-round parameter tables;
* one operation stream per rank: ``(SEND, sid)``, ``(RECV, src,
  round)`` and ``(WAIT, sid)`` tuples in exactly the order the
  generator program issues them (all sends, then all receives, then
  the send-completion waits — per round).

Float discipline: every vectorized expression reproduces the scalar
engine's evaluation order term by term (``(nbytes * t_mem_byte) *
scale``, ``recv_overhead + copy``), and float64 elementwise ops are
IEEE-754 identical to Python floats, so lowered costs are bit-equal to
what :class:`~repro.mpsim.comm.Comm` would have computed one message at
a time.  Receive matching stays *dynamic* in the evaluator (per-inbox
FIFO, mirroring the Store), so the lowering records match predicates —
``(source, round)`` — rather than presuming which send satisfies which
receive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.schedule import Schedule

__all__ = ["OP_SEND", "OP_RECV", "OP_WAIT", "FastPlan", "lower_schedule"]

#: Operation stream opcodes (first element of each rank-op tuple).
OP_SEND = 0
OP_RECV = 1
OP_WAIT = 2


@dataclass
class FastPlan:
    """A schedule lowered to flat arrays, ready for batch replay.

    All per-send lists are parallel (indexed by send id, in global
    issue-plan order); costs are plain Python floats converted from the
    vectorized float64 arrays (an exact conversion).  The plan is
    seed-independent — link paths depend on the run's rank mapping and
    are resolved by the evaluator at bind time.
    """

    p: int
    num_sends: int
    send_src: List[int]
    send_dst: List[int]
    send_nbytes: List[int]
    send_round: List[int]
    #: Sender software overhead charged before each send issues.
    send_ovh: List[float]
    #: Receiver-side overhead + combining copy for the matching receive.
    recv_total: List[float]
    #: The copy component alone (reported separately by the metrics).
    recv_copy: List[float]
    #: Per-rank operation streams of ``(OP_*, ...)`` tuples.
    rank_ops: List[List[Tuple[int, ...]]]


def lower_schedule(schedule: "Schedule") -> FastPlan:
    """Lower ``schedule`` into a :class:`FastPlan`."""
    import numpy as np

    problem = schedule.problem
    params = problem.machine.params
    p = problem.p
    plan = schedule.lowered()

    send_src: List[int] = []
    send_dst: List[int] = []
    send_nbytes: List[int] = []
    send_round: List[int] = []
    rank_ops: List[List[Tuple[int, ...]]] = [[] for _ in range(p)]
    for rank in range(p):
        ops = rank_ops[rank]
        for round_idx, _phase, _collective, _mpi, sends, recvs in plan[rank]:
            first_sid = len(send_src)
            for dst, _msgset, nbytes in sends:
                sid = len(send_src)
                send_src.append(rank)
                send_dst.append(dst)
                send_nbytes.append(nbytes)
                send_round.append(round_idx)
                ops.append((OP_SEND, sid))
            for src in recvs:
                ops.append((OP_RECV, src, round_idx))
            for sid in range(first_sid, first_sid + len(sends)):
                ops.append((OP_WAIT, sid))

    # Per-round parameter tables (one scalar resolution per round), then
    # one vectorized gather + elementwise pass over all sends.  The
    # expressions mirror Comm.recv/params.copy_cost term order exactly.
    rounds = schedule.rounds
    num_rounds = len(rounds)
    round_send_ovh = np.fromiter(
        (
            params.send_overhead(collective=r.collective, mpi=r.mpi)
            for r in rounds
        ),
        dtype=np.float64,
        count=num_rounds,
    )
    round_recv_ovh = np.fromiter(
        (
            params.recv_overhead(collective=r.collective, mpi=r.mpi)
            for r in rounds
        ),
        dtype=np.float64,
        count=num_rounds,
    )
    round_mem_scale = np.fromiter(
        (params.collective_mem_scale if r.collective else 1.0 for r in rounds),
        dtype=np.float64,
        count=num_rounds,
    )
    num_sends = len(send_src)
    ridx = np.fromiter(send_round, dtype=np.intp, count=num_sends)
    nbytes_f = np.fromiter(send_nbytes, dtype=np.float64, count=num_sends)
    send_ovh = round_send_ovh[ridx]
    recv_copy = (nbytes_f * params.t_mem_byte) * round_mem_scale[ridx]
    recv_total = round_recv_ovh[ridx] + recv_copy

    return FastPlan(
        p=p,
        num_sends=num_sends,
        send_src=send_src,
        send_dst=send_dst,
        send_nbytes=send_nbytes,
        send_round=send_round,
        send_ovh=send_ovh.tolist(),
        recv_total=recv_total.tolist(),
        recv_copy=recv_copy.tolist(),
        rank_ops=rank_ops,
    )
