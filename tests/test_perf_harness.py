"""Tests for the perf-regression harness (``repro.perf``).

These never assert absolute times — CI machines vary wildly — only
report structure, comparison arithmetic (including calibration
normalization), and CLI exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    bench,
    calibrate,
    compare_reports,
    load_report,
    run_suite,
    write_report,
)
from repro.perf.__main__ import main as perf_main
from repro.perf.suite import SCHEMA, _definitions


def _report(benchmarks, calibration_s=1.0, **over):
    data = {
        "schema": SCHEMA,
        "created_unix": 0.0,
        "quick": True,
        "python": "x",
        "implementation": "x",
        "platform": "x",
        "calibration_s": calibration_s,
        "benchmarks": benchmarks,
    }
    data.update(over)
    return data


def _bench_dict(name, wall_s):
    return {"name": name, "wall_s": wall_s, "mean_s": wall_s, "repeats": 1}


class TestTimer:
    def test_bench_returns_best_and_mean(self):
        timing = bench(lambda: sum(range(100)), repeats=3, warmup=1)
        assert timing.repeats == 3
        assert 0 < timing.best_s <= timing.mean_s

    def test_calibrate_positive(self):
        assert calibrate(loops=10_000) > 0


class TestSuite:
    def test_quick_names_are_subset_of_full(self):
        quick = {name for name, _ in _definitions(quick=True)}
        full = {name for name, _ in _definitions(quick=False)}
        assert quick < full  # strict subset: full adds the 16x16 points

    def test_run_suite_only_filter_and_schema(self):
        seen = []
        report = run_suite(quick=True, only="route", progress=seen.append)
        assert report["schema"] == SCHEMA
        assert report["calibration_s"] > 0
        names = [b["name"] for b in report["benchmarks"]]
        assert names == ["route/paragon:16x16/lookups"]
        assert seen == names
        route = report["benchmarks"][0]
        assert route["wall_s"] > 0
        assert route["extra"]["lookups"] == 20_000

    def test_write_and_load_roundtrip(self, tmp_path):
        report = _report([_bench_dict("a", 1.0)])
        path = write_report(report, tmp_path / "r.json")
        assert load_report(path) == report

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError):
            load_report(path)


class TestCompare:
    def test_speedup_and_no_regression(self):
        cmp_ = compare_reports(
            _report([_bench_dict("a", 0.5)]),
            _report([_bench_dict("a", 1.0)]),
        )
        assert cmp_.ok
        (row,) = cmp_.rows
        assert row.ratio == pytest.approx(0.5)
        assert row.speedup == pytest.approx(2.0)
        assert "ok" in cmp_.format_table()

    def test_regression_detected_beyond_tolerance(self):
        cmp_ = compare_reports(
            _report([_bench_dict("a", 1.3)]),
            _report([_bench_dict("a", 1.0)]),
            tolerance=0.25,
        )
        assert not cmp_.ok
        assert cmp_.regressions[0].name == "a"
        assert "REGRESSED" in cmp_.format_table()

    def test_calibration_normalizes_machine_speed(self):
        """2x slower wall on a 2x slower machine is NOT a regression."""
        cmp_ = compare_reports(
            _report([_bench_dict("a", 2.0)], calibration_s=2.0),
            _report([_bench_dict("a", 1.0)], calibration_s=1.0),
        )
        assert cmp_.calibration_ratio == pytest.approx(2.0)
        assert cmp_.rows[0].ratio == pytest.approx(1.0)
        assert cmp_.ok

    def test_per_benchmark_calibration_preferred(self):
        """A bench measured during a local 2x slow phase is normalized
        by its own bracketing calibration, not the report-level one."""
        cur = _bench_dict("a", 2.0)
        cur["calibration_s"] = 2.0
        base = _bench_dict("a", 1.0)
        base["calibration_s"] = 1.0
        cmp_ = compare_reports(
            _report([cur], calibration_s=1.0),
            _report([base], calibration_s=1.0),
        )
        assert cmp_.rows[0].ratio == pytest.approx(1.0)
        assert cmp_.ok

    def test_only_common_names_compared(self):
        cmp_ = compare_reports(
            _report([_bench_dict("a", 1.0), _bench_dict("b", 1.0)]),
            _report([_bench_dict("b", 1.0), _bench_dict("c", 1.0)]),
        )
        assert [r.name for r in cmp_.rows] == ["b"]


class TestCli:
    def test_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = perf_main(["--quick", "--only", "route", "--out", str(out)])
        assert code == 0
        report = load_report(out)
        assert [b["name"] for b in report["benchmarks"]] == [
            "route/paragon:16x16/lookups"
        ]
        assert "wrote" in capsys.readouterr().out

    def test_compare_missing_baseline_exits_2(self, tmp_path):
        code = perf_main(
            [
                "--quick",
                "--only",
                "route",
                "--out",
                str(tmp_path / "b.json"),
                "--compare",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 2

    def test_compare_against_own_output_passes(self, tmp_path):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        assert (
            perf_main(
                ["--quick", "--only", "route", "--out", str(baseline)]
            )
            == 0
        )
        # Generous tolerance: route lookups are fast and this only
        # checks the exit-code plumbing, not machine stability.
        code = perf_main(
            [
                "--quick",
                "--only",
                "route",
                "--out",
                str(out),
                "--compare",
                str(baseline),
                "--tolerance",
                "5.0",
            ]
        )
        assert code == 0

    def test_compare_flags_synthetic_regression(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        assert (
            perf_main(
                ["--quick", "--only", "route", "--out", str(out)]
            )
            == 0
        )
        report = load_report(out)
        for bench_dict in report["benchmarks"]:
            bench_dict["wall_s"] /= 100.0  # baseline 100x faster
        write_report(report, baseline)
        code = perf_main(
            [
                "--quick",
                "--only",
                "route",
                "--out",
                str(out),
                "--compare",
                str(baseline),
            ]
        )
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
