"""Generator-based simulated processes.

A *process* wraps a Python generator: each ``yield``-ed
:class:`~repro.simulator.events.Event` suspends the process until the
event fires, at which point the generator is resumed with the event's
value.  A process is itself an event that fires (with the generator's
return value) when the generator finishes — so processes can wait on
each other, which is how a machine run joins all its node programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.simulator.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A simulated thread of control driving a generator.

    Parameters
    ----------
    engine:
        Owning engine.
    generator:
        A generator yielding :class:`Event` objects.  Its ``return``
        value becomes the process's event value.
    name:
        Optional label used in deadlock reports and traces.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current instant (deterministically ordered
        # after already-scheduled events of this instant).
        start = Event(engine)
        start.add_callback(self._resume)
        start.succeed()

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def describe_block(self) -> str:
        """One-line description of what this process is blocked on."""
        target = self._waiting_on
        desc = "not started" if target is None else repr(target)
        return f"{self.name} waiting on {desc}"

    # -- execution ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator by one step with ``event``'s value."""
        self._waiting_on = None
        try:
            target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (did you forget 'yield from'?)"
            )
        if target.engine is not self.engine:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another engine"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
