"""IO-fault grammar and injection-shim semantics."""

from __future__ import annotations

import errno

import pytest

from repro.errors import ConfigurationError
from repro.reliability import (
    RAW_IO,
    FaultyIO,
    IOFault,
    IOFaultPlan,
    SimulatedCrash,
)
from repro.reliability.iofaults import parse_io_fault


class TestGrammar:
    def test_parse_each_kind(self):
        assert parse_io_fault("torn:write@3").canonical() == "torn:write@3"
        assert parse_io_fault("err:ENOSPC@5").canonical() == "err:ENOSPC@5"
        assert parse_io_fault("crash@0").canonical() == "crash@0"
        assert (
            parse_io_fault("stall:read@2+0.5").canonical() == "stall:read@2+0.5"
        )

    def test_plan_parse_normalises_order_and_whitespace(self):
        plan = IOFaultPlan.parse(" err:EIO@7 ;crash@2;  torn:write@2 ")
        # Sorted by (index, canonical): both index-2 clauses precede 7,
        # and within an index ties break on the canonical string.
        assert plan.canonical() == "crash@2;torn:write@2;err:EIO@7"
        assert IOFaultPlan.parse(plan.canonical()).canonical() == plan.canonical()

    def test_empty_plan_is_legal(self):
        assert IOFaultPlan.parse("").canonical() == ""
        assert FaultyIO().plan.faults == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "torn:read@3",  # torn applies only to writes
            "err:NOTREAL@1",
            "crash@-1",
            "stall:write@2",  # stall needs a duration
            "frobnicate@4",
            "crash@x",
        ],
    )
    def test_bad_clauses_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            IOFaultPlan.parse(bad)

    def test_unknown_errno_rejected_even_when_constructed(self):
        with pytest.raises(ConfigurationError, match="errno"):
            IOFault("err", 0, errno_name="EBOGUS")


class TestFaultyIO:
    def test_counts_and_traces_counted_ops(self, tmp_path):
        io = FaultyIO()
        target = tmp_path / "a.txt"
        io.write_text(target, "hello")
        assert io.read_text(target) == "hello"
        io.replace(target, tmp_path / "b.txt")
        io.unlink(tmp_path / "b.txt")
        io.mkdir(tmp_path / "dir")  # metadata: not counted
        assert io.exists(tmp_path / "dir")  # metadata: not counted
        assert io.ops == 4
        assert [kind for _, kind, _ in io.trace] == [
            "write",
            "read",
            "replace",
            "unlink",
        ]

    def test_missing_file_read_still_counts(self, tmp_path):
        # A cache miss is an op the plan can address: the read is
        # counted before the FileNotFoundError propagates.
        io = FaultyIO()
        with pytest.raises(FileNotFoundError):
            io.read_text(tmp_path / "nope.json")
        assert io.ops == 1

    def test_err_raises_the_named_errno(self, tmp_path):
        io = FaultyIO("err:ENOSPC@1")
        io.write_text(tmp_path / "ok.txt", "fine")  # op 0: untouched
        with pytest.raises(OSError) as excinfo:
            io.write_text(tmp_path / "fails.txt", "doomed")
        assert excinfo.value.errno == errno.ENOSPC
        assert not (tmp_path / "fails.txt").exists()
        # The op index advanced past the fault: a retry succeeds.
        io.write_text(tmp_path / "fails.txt", "doomed")
        assert (tmp_path / "fails.txt").read_text() == "doomed"

    def test_crash_is_a_base_exception(self, tmp_path):
        io = FaultyIO("crash@0")
        with pytest.raises(SimulatedCrash):
            try:
                io.write_text(tmp_path / "x", "y")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must pierce `except Exception`")
        assert not (tmp_path / "x").exists()

    def test_torn_write_persists_a_prefix(self, tmp_path):
        io = FaultyIO("torn:write@0")
        io.write_text(tmp_path / "torn.json", '{"k": "0123456789"}')
        data = (tmp_path / "torn.json").read_text()
        assert data == '{"k": "01'  # first half of the bytes
        # torn scopes to writes: a read at the same plan is untouched.
        assert FaultyIO("torn:write@0").read_text(tmp_path / "torn.json")

    def test_torn_applies_to_exclusive_creates_too(self, tmp_path):
        io = FaultyIO("torn:write@0")
        io.create_excl(tmp_path / "lease", '{"owner": "w", "fence": 1}')
        assert (tmp_path / "lease").read_text() == '{"owner": "w"'

    def test_stall_sleeps_then_proceeds(self, tmp_path):
        naps = []
        io = FaultyIO("stall:read@1+0.25", sleep=naps.append)
        io.write_text(tmp_path / "f", "x")  # op 0: write, no stall
        (tmp_path / "g").write_text("y")
        assert io.read_text(tmp_path / "g") == "y"  # op 1: stalled read
        assert naps == [0.25]
        # op kind must match: a write at a stall:read index does not nap.
        io2 = FaultyIO("stall:read@0+0.25", sleep=naps.append)
        io2.write_text(tmp_path / "h", "z")
        assert naps == [0.25]

    def test_unreached_fault_is_a_noop(self, tmp_path):
        io = FaultyIO("crash@99")
        io.write_text(tmp_path / "f", "x")
        assert io.ops == 1  # nothing raised; the fault simply never fired

    def test_raw_io_roundtrip(self, tmp_path):
        RAW_IO.mkdir(tmp_path / "d")
        RAW_IO.write_text(tmp_path / "d" / "f", "data")
        assert RAW_IO.read_text(tmp_path / "d" / "f") == "data"
        RAW_IO.replace(tmp_path / "d" / "f", tmp_path / "d" / "g")
        assert RAW_IO.exists(tmp_path / "d" / "g")
        with pytest.raises(FileExistsError):
            RAW_IO.create_excl(tmp_path / "d" / "g", "clobber")
        RAW_IO.unlink(tmp_path / "d" / "g")
        assert not RAW_IO.exists(tmp_path / "d" / "g")
