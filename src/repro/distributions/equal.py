"""Equal distribution — E(s) of §4.

Processor (0, 0) is a source and every ``ceil(p/s)``-th or
``floor(p/s)``-th processor (in row-major order) is a source: source
*j* sits at linear index ``floor(j * p / s)``, which interleaves the
two spacings exactly as the paper describes.  Depending on ``s`` and
the grid shape, E(s) degenerates into row-, column-, or diagonal-like
patterns — the effect behind the Figure-8 "anomaly" where s = 15
outruns s = 8 on some 120-node shapes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.distributions.base import SourceDistribution

__all__ = ["EqualDistribution"]


class EqualDistribution(SourceDistribution):
    """E(s): sources evenly spaced in row-major rank order."""

    key = "E"
    label = "equal"

    def place(self, rows: int, cols: int, s: int) -> List[Tuple[int, int]]:
        p = rows * cols
        return [divmod((j * p) // s, cols) for j in range(s)]
