"""Differential tests pinning simulator results to golden fixtures.

The fixtures in ``tests/golden/simcore_golden.json`` were generated
from the pre-optimization simulator core.  Every entry records the
sha256 of the canonical ``BroadcastResult.to_dict()`` JSON for one
``(machine, algorithm, sources, message size, seed)`` point — or the
exception class for combinations the algorithm rejects.  These tests
prove the hot-path optimizations (route memoization, communicator
views, fused send events, inlined scheduling) are *bit-identical*
rewrites: same virtual times, same transfer counts, same metrics,
down to the last float bit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.problem import BroadcastProblem
from repro.core.runner import run_broadcast
from repro.machines import machine_from_spec

GOLDEN_PATH = Path(__file__).parent / "golden" / "simcore_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _canonical_hash(result) -> str:
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_point(key: str, engine: str = "auto"):
    spec, algorithm, s_part, L_part, seed_part = key.split("|")
    s = int(s_part.split("=")[1])
    L = int(L_part.split("=")[1])
    seed = int(seed_part.split("=")[1])
    problem = BroadcastProblem(
        machine=machine_from_spec(spec),
        sources=tuple(range(s)),
        message_size=L,
    )
    return run_broadcast(problem, algorithm, seed=seed, engine=engine)


@pytest.mark.parametrize("engine", ["auto", "event", "fast"])
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_result_matches_golden(key, engine):
    """Every fixture point reproduces its digest under every engine.

    The same sha256 values pin all three engine selections: the fast
    path (``fast``, and ``auto`` on these clean runs) must be a
    bit-identical rewrite of the event engine (``event``), with no
    engine-specific fixture file.
    """
    expect = GOLDEN[key]
    if "error" in expect:
        with pytest.raises(Exception) as excinfo:
            _run_point(key, engine)
        assert type(excinfo.value).__name__ == expect["error"]
        return
    result = _run_point(key, engine)
    assert result.elapsed_us == expect["elapsed_us"]
    assert result.num_transfers == expect["num_transfers"]
    assert _canonical_hash(result) == expect["sha256"]


def test_repeated_runs_are_bit_identical():
    """Two runs of the same point produce byte-for-byte equal JSON.

    Guards the warm-cache path: the second run hits the memoized
    machine, routes, and communicator views, and must not diverge
    from the first (cold) run in any way.
    """
    key = "paragon:8x8|PersAlltoAll|s=16|L=1024|seed=0"
    first = _run_point(key)
    second = _run_point(key)
    blob_a = json.dumps(first.to_dict(), sort_keys=True, separators=(",", ":"))
    blob_b = json.dumps(second.to_dict(), sort_keys=True, separators=(",", ":"))
    assert blob_a == blob_b


def test_golden_fixture_covers_acceptance_point():
    """The 16x16 s=64 perf acceptance point is pinned by a fixture."""
    assert "paragon:16x16|PersAlltoAll|s=64|L=4096|seed=0" in GOLDEN
