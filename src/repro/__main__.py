"""Top-level CLI: run one s-to-p broadcast from the command line.

Examples::

    python -m repro --machine paragon:10x10 --dist Dr --s 30 --L 4096
    python -m repro --machine t3d:128 --algorithm MPI_Alltoall --s 40
    python -m repro --machine paragon:16x16 --dist Sq --s 49 --timeline
    python -m repro --machine t3d:128 --s 40 --cache-dir ~/.cache/repro/sweep

Runs route through the sweep executor (see :mod:`repro.sweep`): with
``--cache-dir`` set, a repeated configuration is answered from the
on-disk result cache instead of re-simulating; ``--no-cache`` forces
recomputation.  ``--timeline`` always simulates directly (the tracer
cannot ride through worker processes or the cache).

Subcommands: ``python -m repro sweep`` evaluates whole grids — serial,
pooled, or sharded across worker processes (``--shards`` / ``--worker``,
see :mod:`repro.sweep.cli`); ``python -m repro chaos`` runs the fault
harness (``--orchestrator`` points it at the sweep coordinator itself);
``python -m repro trace`` exports Chrome traces; ``python -m repro
report`` reproduces the paper from ``configs/*.toml`` into
self-contained HTML reports and regenerates EXPERIMENTS.md/RESULTS.txt
(see :mod:`repro.pipeline.cli`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

import repro
from repro.core.selector import recommend
from repro.distributions.ascii_art import render_placement
from repro.errors import ReproError
from repro.machines import machine_from_spec
from repro.metrics.timeline import render_timeline
from repro.simulator.trace import Tracer
from repro.sweep import ResultCache, SweepExecutor, SweepPoint

__all__ = ["main"]


def parse_machine(spec: str) -> "repro.Machine":
    """``paragon:RxC`` | ``t3d:P`` | ``hypercube:P`` → a Machine."""
    return machine_from_spec(spec)


def _engine_line(requested: str, result: "repro.BroadcastResult") -> str:
    """Human-readable execution provenance for the ``engine:`` line.

    Direct runs carry it in ``result.debug``; results that crossed the
    sweep executor's serialization boundary (worker process or cache)
    lose the debug dict, so the line is reconstructed from the engine
    request and run shape — the selection rule is deterministic — with
    the kernel mode read from this process (workers share its
    environment, so the mode matches).
    """
    debug = result.debug
    if debug.get("engine") == "fast":
        return (
            f"fast (kernel={debug['kernel']}, "
            f"plan-cache={debug['plan_cache']})"
        )
    if debug.get("engine") == "event":
        return "event"
    blocked = bool(result.faults_active) or result.recovered is not None
    if requested == "event" or (requested == "auto" and blocked):
        return "event"
    from repro.fastpath import kernel_mode

    return f"fast (kernel={kernel_mode()})"


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "chaos":
        from repro.faults.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.sweep.cli import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.pipeline.cli import main as report_main

        return report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one s-to-p broadcast on a simulated MPP.",
    )
    parser.add_argument(
        "--machine", default="paragon:10x10", help="paragon:RxC | t3d:P | hypercube:P"
    )
    parser.add_argument(
        "--dist",
        default="E",
        help=f"source distribution ({', '.join(repro.list_distributions())})",
    )
    parser.add_argument("--s", type=int, default=30, help="number of sources")
    parser.add_argument("--L", type=int, default=4096, help="message bytes")
    parser.add_argument(
        "--algorithm",
        default=None,
        help="algorithm name (default: the paper's recommendation)",
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject faults, e.g. 'link:(2,3)-(2,4)@500us;node:17' or "
            "'degrade:links=0.25,factor=4' (grammar in EXPERIMENTS.md)"
        ),
    )
    parser.add_argument(
        "--recover",
        action="store_true",
        help="run the recovery protocol after a faulty run (needs --faults)",
    )
    parser.add_argument(
        "--show-sources", action="store_true", help="render the placement"
    )
    parser.add_argument(
        "--timeline", action="store_true", help="render the activity timeline"
    )
    parser.add_argument(
        "--trace-json",
        default=None,
        metavar="PATH",
        help="capture a full trace and write Chrome trace-event JSON here",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "event", "fast"),
        default="auto",
        help=(
            "simulation engine: auto picks the vectorized fast path for "
            "clean runs and the event engine otherwise; results are "
            "bit-identical either way (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="sweep worker processes (default: $REPRO_SWEEP_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="memoize results in this sweep cache directory",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the sweep result cache (no reads, no writes)",
    )
    args = parser.parse_args(argv)

    try:
        machine = parse_machine(args.machine)
        distribution = repro.get_distribution(args.dist)
        sources = distribution.generate(machine, args.s)
        problem = repro.BroadcastProblem(machine, sources, message_size=args.L)
        if args.algorithm is None:
            rec = recommend(problem)
            algorithm = rec.algorithm
            print(f"algorithm (recommended): {algorithm}")
        else:
            algorithm = args.algorithm
            print(f"algorithm: {algorithm}")
        if args.show_sources:
            print(render_placement(machine, sources, title="sources"))
        if args.trace_json is not None:
            tracer = Tracer()  # full capture: spans + kernel + fabric
        elif args.timeline:
            tracer = Tracer(kinds=("send", "recv"))
        else:
            tracer = None
        if tracer is None and machine.spec is not None and isinstance(algorithm, str):
            cache = (
                ResultCache(args.cache_dir)
                if args.cache_dir and not args.no_cache
                else None
            )
            executor = SweepExecutor(
                jobs=args.jobs, cache=cache, engine=args.engine
            )
            point = SweepPoint.from_problem(
                problem,
                algorithm,
                seed=args.seed,
                distribution=args.dist,
                faults=args.faults,
                recover=args.recover and args.faults is not None,
            )
            result = executor.run([point])[0]
            if cache is not None and executor.last_report is not None:
                print(
                    "cache:      "
                    + ("hit" if executor.last_report.cached else "miss")
                    + f" ({args.cache_dir})"
                )
        else:
            result = repro.run_broadcast(
                problem, algorithm, seed=args.seed, tracer=tracer,
                faults=args.faults,
                recover=args.recover and args.faults is not None,
                engine=args.engine,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"machine:    {machine.params.name}, p = {machine.p}")
    print(f"problem:    s = {problem.s}, L = {args.L} bytes "
          f"({distribution.name} distribution)")
    print(f"engine:     {_engine_line(args.engine, result)}")
    print(f"time:       {result.elapsed_ms:.3f} ms")
    if result.faults_active:
        print(f"faults:     {'; '.join(result.faults_active)}")
        print(f"delivery:   {result.delivery * 100.0:.1f}%"
              + ("" if result.complete else "  (PARTIAL)"))
    if result.recovered is not None:
        print(
            f"recovery:   {'complete' if result.recovered else 'INCOMPLETE'} "
            f"({result.recovery_rounds} round(s), "
            f"{result.recovery_time_us / 1000.0:.3f} ms)"
        )
    print(f"rounds:     {result.num_rounds}")
    print(f"messages:   {result.num_transfers}")
    metrics = result.metrics
    print(
        "figure-2:   "
        f"congestion={metrics.congestion} wait={metrics.wait_count} "
        f"send_recv={metrics.send_recv_ops} "
        f"av_msg_lgth={metrics.av_msg_lgth:.0f} "
        f"av_act_proc={metrics.av_act_proc:.1f}"
    )
    if tracer is not None and args.timeline:
        print()
        print(render_timeline(tracer, p=machine.p))
    if tracer is not None and args.trace_json is not None:
        from repro.obs.chrome import write_chrome_trace

        trace = write_chrome_trace(
            args.trace_json,
            tracer,
            topology=machine.topology,
            label=(
                f"{args.machine} {args.dist} s={args.s} L={args.L} "
                f"{result.algorithm} seed={args.seed}"
            ),
        )
        print(
            f"trace:      {args.trace_json} "
            f"({len(trace['traceEvents'])} events, "
            f"schema {trace['otherData']['schema']})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
