"""Robustness: Br_* slowdown and delivery under injected faults."""

from __future__ import annotations

from repro.bench import robustness

from benchmarks.conftest import run_experiment


def test_robustness_faults(benchmark):
    """Link failure detours cheaply; degraded links slow but deliver."""
    run_experiment(benchmark, robustness.robustness_faults)
