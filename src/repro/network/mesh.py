"""2-D mesh topology — the Intel Paragon interconnect.

Nodes are laid out in row-major order: node ``r * cols + c`` sits at
mesh coordinate ``(r, c)``.  Each node is wired to its four
north/south/east/west neighbours (no wraparound).  Routing is
deterministic XY dimension-order: first along the row (X/columns), then
along the column (Y/rows) — matching the Paragon's wormhole routers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import TopologyError
from repro.network.topology import Topology

__all__ = ["Mesh2D"]


class Mesh2D(Topology):
    """A ``rows x cols`` 2-D mesh without wraparound links.

    Parameters
    ----------
    rows, cols:
        Mesh extents; both must be positive.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise TopologyError(f"invalid mesh shape {rows}x{cols}")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    east = node + 1
                    self._add_link(node, east)
                    self._add_link(east, node)
                if r + 1 < rows:
                    south = node + cols
                    self._add_link(node, south)
                    self._add_link(south, node)
        self._finalize()

    @property
    def shape(self) -> Sequence[int]:
        return (self.rows, self.cols)

    # -- coordinates -----------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        """``(row, col)`` of ``node`` (0-based)."""
        self._check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at mesh coordinate ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TopologyError(
                f"coordinate ({row}, {col}) outside {self.rows}x{self.cols}"
            )
        return row * self.cols + col

    # -- routing -----------------------------------------------------------
    def route_nodes(self, src: int, dst: int) -> List[int]:
        """XY dimension-order route: move along the row first, then the column."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        nodes = [src]
        col_step = 1 if dc > sc else -1
        for c in range(sc + col_step, dc + col_step, col_step) if dc != sc else []:
            nodes.append(self.node_at(sr, c))
        row_step = 1 if dr > sr else -1
        for r in range(sr + row_step, dr + row_step, row_step) if dr != sr else []:
            nodes.append(self.node_at(r, dc))
        return nodes
