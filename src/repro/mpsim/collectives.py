"""Library collectives built over point-to-point, as real MPI libraries are.

Every function here is an SPMD generator: all ranks of the
communicator's group must call it (with consistent arguments), and each
rank ``yield from``-s it inside its program.  Overheads are charged in
*collective* mode — the caller's communicator is switched with
``comm.with_mode(collective=True)`` internally, so on the T3D these
operations ride the cheap shmem tier while hand-written send/recv code
does not (see :mod:`repro.machines.t3d`).

Implementations follow the classical patterns the 1990s libraries used:

* ``barrier`` — dissemination (ceil(log2 p) rounds);
* ``bcast`` — binomial tree rooted anywhere;
* ``gather`` / ``gatherv`` — *flat* sends to the root.  This is
  deliberately the naive pattern: the paper attributes
  ``MPI_AllGather``'s cost on both machines to congestion at the
  gathering processor, which only a flat gather exhibits;
* ``allgatherv`` — flat gather followed by a binomial bcast of the
  concatenation (the "2-Step" structure of the paper);
* ``alltoall`` — ``p - 1`` rounds of XOR (power-of-two group) or cyclic
  permutations, the schedule of Hambrusch, Hameed & Khokhar [8].

Tags: every collective call derives its tags from ``tag_base``; callers
nesting collectives must pass distinct bases (the broadcasting
algorithms use disjoint tag spaces per phase).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.errors import CommError
from repro.mpsim.comm import Comm

__all__ = [
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "allgatherv",
    "ring_allgather",
    "scatter",
    "reduce",
    "allreduce",
    "alltoall",
    "xor_or_cyclic_partner",
]

#: Default tag bases, spaced so nested phases never collide.
_TAG_BARRIER = 1 << 20
_TAG_BCAST = 1 << 21
_TAG_GATHER = 1 << 22
_TAG_ALLTOALL = 1 << 23
_TAG_SCATTER = 1 << 24
_TAG_REDUCE = 1 << 25
_TAG_RING = 1 << 26


def _ceil_log2(n: int) -> int:
    """Smallest k with 2**k >= n (0 for n <= 1)."""
    return max(n - 1, 0).bit_length()


def barrier(comm: Comm, tag_base: int = _TAG_BARRIER) -> Generator[Any, Any, None]:
    """Dissemination barrier: no rank leaves before every rank has entered."""
    lib = comm.with_mode(collective=True)
    size = lib.size
    rank = lib.rank
    for k in range(_ceil_log2(size)):
        dist = 1 << k
        dst = (rank + dist) % size
        src = (rank - dist) % size
        request = yield from lib.isend(dst, None, nbytes=0, tag=tag_base + k)
        yield from lib.recv(source=src, tag=tag_base + k)
        yield from request.wait()


def bcast(
    comm: Comm,
    payload: Any,
    nbytes: int,
    root: int = 0,
    tag_base: int = _TAG_BCAST,
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast; returns the payload on every rank.

    The tree is the linear-array halving pattern of the paper's
    one-to-all step: the root sends to the rank ``size/2`` away, then
    each half recurses — expressed here in the standard virtual-rank
    mask form, which yields the identical communication structure.
    """
    lib = comm.with_mode(collective=True)
    size = lib.size
    vrank = (lib.rank - root) % size
    data = payload
    # Non-roots receive exactly once, at the mask of their lowest set bit.
    mask = 1
    while mask < size:
        if vrank & mask:
            src = ((vrank - mask) + root) % size
            envelope = yield from lib.recv(source=src, tag=tag_base + mask)
            data = envelope.payload
            break
        mask <<= 1
    # Fan out to sub-tree leaders at every mask below the receive mask.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from lib.send(dst, data, nbytes=nbytes, tag=tag_base + mask)
        mask >>= 1
    return data


def gather(
    comm: Comm,
    payload: Any,
    nbytes: int,
    root: int = 0,
    tag_base: int = _TAG_GATHER,
) -> Generator[Any, Any, Optional[List[Any]]]:
    """Flat gather: every non-root sends directly to the root.

    Returns the list of payloads in rank order at the root, ``None``
    elsewhere.  The serialisation of arrivals on the root's ejection
    channel is the congestion the paper's Figure 2 charges to *2-Step*.
    """
    lib = comm.with_mode(collective=True)
    if lib.rank != root:
        yield from lib.send(root, payload, nbytes=nbytes, tag=tag_base)
        return None
    items: List[Any] = [None] * lib.size
    items[root] = payload
    for src in range(lib.size):
        if src == root:
            continue
        envelope = yield from lib.recv(source=src, tag=tag_base)
        items[src] = envelope.payload
    return items


def gatherv(
    comm: Comm,
    payload: Any,
    nbytes: int,
    counts: Sequence[int],
    root: int = 0,
    tag_base: int = _TAG_GATHER,
) -> Generator[Any, Any, Optional[List[Any]]]:
    """Flat gather with per-rank byte counts; zero-count ranks send nothing.

    ``counts[r]`` is the byte count rank ``r`` contributes (must equal
    ``nbytes`` on the calling rank).  This is the s-to-one step of the
    paper's 2-Step algorithm: only the ``s`` sources transmit.
    """
    lib = comm.with_mode(collective=True)
    if len(counts) != lib.size:
        raise CommError(
            f"gatherv needs {lib.size} counts, got {len(counts)}"
        )
    if counts[lib.rank] != nbytes:
        raise CommError(
            f"rank {lib.rank}: nbytes {nbytes} != counts[rank] {counts[lib.rank]}"
        )
    if lib.rank != root:
        if nbytes > 0:
            yield from lib.send(root, payload, nbytes=nbytes, tag=tag_base)
        return None
    items: List[Any] = [None] * lib.size
    items[root] = payload if nbytes > 0 else None
    for src in range(lib.size):
        if src == root or counts[src] == 0:
            continue
        envelope = yield from lib.recv(source=src, tag=tag_base)
        items[src] = envelope.payload
    return items


def allgatherv(
    comm: Comm,
    payload: Any,
    nbytes: int,
    counts: Sequence[int],
    tag_base: int = _TAG_GATHER,
) -> Generator[Any, Any, List[Any]]:
    """Flat gather to rank 0 followed by a binomial bcast of the result.

    This is the gather+broadcast structure the paper identifies inside
    ``MPI_AllGather`` ("the congestion arising at processor P0", §5.3).
    Returns the payload list (rank order, ``None`` for zero-count
    ranks) on every rank.
    """
    items = yield from gatherv(comm, payload, nbytes, counts, root=0, tag_base=tag_base)
    total = sum(counts)
    items = yield from bcast(comm, items, total, root=0, tag_base=tag_base + comm.size + 1)
    return items


def xor_or_cyclic_partner(rank: int, size: int, round_index: int) -> Tuple[int, int]:
    """``(dest, source)`` partners for one personalized-exchange round.

    Power-of-two groups use the XOR permutations of [8] (dest == source
    each round); other sizes fall back to cyclic offsets.
    ``round_index`` runs from 1 to ``size - 1``.
    """
    if not 1 <= round_index < size:
        raise CommError(f"round index {round_index} outside [1, {size})")
    if size & (size - 1) == 0:
        partner = rank ^ round_index
        return partner, partner
    return (rank + round_index) % size, (rank - round_index) % size


def alltoall(
    comm: Comm,
    payloads: Sequence[Any],
    counts: Sequence[Sequence[int]],
    tag_base: int = _TAG_ALLTOALL,
) -> Generator[Any, Any, List[Any]]:
    """Personalized all-to-all as ``size - 1`` permutation rounds.

    ``payloads[d]`` / ``counts[r][d]`` describe what rank ``r`` sends to
    rank ``d`` (zero-byte entries are "null messages" and are skipped —
    every rank knows the full ``counts`` matrix, mirroring the paper's
    assumption that source positions are known).  Returns the received
    payloads indexed by source; a rank's own slot keeps its own payload.
    """
    lib = comm.with_mode(collective=True)
    size = lib.size
    rank = lib.rank
    if len(payloads) != size or len(counts) != size:
        raise CommError("alltoall needs size-length payloads and counts")
    result: List[Any] = [None] * size
    result[rank] = payloads[rank]
    for k in range(1, size):
        dst, src = xor_or_cyclic_partner(rank, size, k)
        request = None
        if counts[rank][dst] > 0 and dst != rank:
            request = yield from lib.isend(
                dst, payloads[dst], nbytes=counts[rank][dst], tag=tag_base + k
            )
        if counts[src][rank] > 0 and src != rank:
            envelope = yield from lib.recv(source=src, tag=tag_base + k)
            result[src] = envelope.payload
        if request is not None:
            yield from request.wait()
    return result


def scatter(
    comm: Comm,
    payloads: Optional[Sequence[Any]],
    nbytes_each: int,
    root: int = 0,
    tag_base: int = _TAG_SCATTER,
) -> Generator[Any, Any, Any]:
    """Binomial scatter: the root distributes one item to every rank.

    ``payloads`` (rank-indexed, significant at the root only) is split
    recursively: at each mask step a sub-tree leader forwards the
    half of the items destined beyond the mask, so the root transmits
    ``O(p * nbytes_each)`` bytes total but over only ``log p`` sends.
    Returns this rank's item.
    """
    lib = comm.with_mode(collective=True)
    size = lib.size
    vrank = (lib.rank - root) % size
    # Receive my bundle (a dict vrank -> payload), then split it down.
    if vrank == 0:
        if payloads is None or len(payloads) != size:
            raise CommError("scatter root needs one payload per rank")
        bundle = {v: payloads[(v + root) % size] for v in range(size)}
    else:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        src = ((vrank - mask) + root) % size
        envelope = yield from lib.recv(source=src, tag=tag_base + mask)
        bundle = envelope.payload
    # Forward the sub-bundles to my children (top-down masks).
    mask = 1
    while mask < size:
        if vrank & (mask - 1):
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size and not vrank & mask:
            sub = {v: item for v, item in bundle.items() if v >= child}
            sub = {v: item for v, item in sub.items() if v < child + mask}
            if sub:
                dst = (child + root) % size
                yield from lib.send(
                    dst,
                    sub,
                    nbytes=nbytes_each * len(sub),
                    tag=tag_base + mask,
                )
                for v in sub:
                    bundle.pop(v, None)
        mask >>= 1
    return bundle[vrank]


def ring_allgather(
    comm: Comm,
    payload: Any,
    nbytes: int,
    tag_base: int = _TAG_RING,
) -> Generator[Any, Any, List[Any]]:
    """Ring allgather: ``p - 1`` rounds, each rank forwards what it got.

    The bandwidth-optimal large-message pattern (every rank sends and
    receives exactly ``(p-1) * nbytes``); complements the flat
    gather+bcast ``allgatherv`` the paper associates with the vendor
    library.
    """
    lib = comm.with_mode(collective=True)
    size = lib.size
    rank = lib.rank
    items: List[Any] = [None] * size
    items[rank] = payload
    current = (rank, payload)
    for k in range(size - 1):
        dst = (rank + 1) % size
        src = (rank - 1) % size
        request = yield from lib.isend(
            dst, current, nbytes=nbytes, tag=tag_base + k
        )
        envelope = yield from lib.recv(source=src, tag=tag_base + k)
        yield from request.wait()
        origin, item = envelope.payload
        items[origin] = item
        current = (origin, item)
    return items


def reduce(
    comm: Comm,
    value: Any,
    nbytes: int,
    op,
    root: int = 0,
    tag_base: int = _TAG_REDUCE,
) -> Generator[Any, Any, Any]:
    """Binomial-tree reduction with operator ``op(a, b)``.

    Returns the reduction at the root, ``None`` elsewhere.  Combining
    cost is charged naturally through the receive copy (the same
    mechanism as the broadcasting algorithms' message merging).
    """
    lib = comm.with_mode(collective=True)
    size = lib.size
    vrank = (lib.rank - root) % size
    accum = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = ((vrank - mask) + root) % size
            yield from lib.send(dst, accum, nbytes=nbytes, tag=tag_base + mask)
            return None
        partner = vrank + mask
        if partner < size:
            src = (partner + root) % size
            envelope = yield from lib.recv(source=src, tag=tag_base + mask)
            accum = op(accum, envelope.payload)
        mask <<= 1
    return accum


def allreduce(
    comm: Comm,
    value: Any,
    nbytes: int,
    op,
    tag_base: int = _TAG_REDUCE,
) -> Generator[Any, Any, Any]:
    """Reduce to rank 0 followed by a broadcast; returns the result everywhere."""
    result = yield from reduce(
        comm, value, nbytes, op, root=0, tag_base=tag_base
    )
    result = yield from bcast(
        comm, result, nbytes, root=0, tag_base=tag_base + 2 * comm.size + 3
    )
    return result
