"""CLI for the perf suite: ``python -m repro.perf``.

Examples::

    python -m repro.perf                         # full suite -> BENCH_simcore.json
    python -m repro.perf --quick                 # CI smoke subset
    python -m repro.perf --only route            # name-substring filter
    python -m repro.perf --compare               # vs benchmarks/perf_baseline.json
    python -m repro.perf --compare old.json --tolerance 0.10

``--compare`` exits non-zero when any common benchmark regresses by
more than the tolerance (calibration-normalized; see
:func:`repro.perf.suite.compare_reports`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.perf.suite import (
    DEFAULT_TOLERANCE,
    compare_reports,
    load_report,
    run_suite,
    write_report,
)

__all__ = ["main"]

#: The committed baseline ``--compare`` defaults to.
DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the simulator perf-regression suite.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset: skips the 16x16 points (same workloads)",
    )
    parser.add_argument(
        "--only", metavar="SUBSTR", help="run only benchmarks whose name contains SUBSTR"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_simcore.json",
        help="report output path (default: %(default)s)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        default=None,
        help=(
            "compare the fresh run against a baseline report and fail on "
            f"regression (default baseline: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed normalized slowdown before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help=(
            "re-measure regressed benchmarks this many times before "
            "failing, to rule out transient machine noise (default: "
            "%(default)s)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(
        quick=args.quick,
        only=args.only,
        progress=lambda name: print(f"  bench {name} ...", flush=True),
    )
    out = write_report(report, args.out)
    print(f"wrote {out} ({len(report['benchmarks'])} benchmarks)")
    for bench_dict in report["benchmarks"]:
        eps = bench_dict.get("events_per_s")
        extra_txt = f"  {eps:>12.0f} events/s" if eps else ""
        extra = bench_dict.get("extra", {})
        if "replay_s" in extra:
            # Fast-path rows: warm replay is the gated wall_s; show how
            # much the plan cache shaves off a cold (lower + replay) run.
            extra_txt += (
                f"  [replay {extra['replay_s']:.4f}s"
                f" + lowering {extra['lowering_s']:.4f}s"
                f" = cold {extra['cold_s']:.4f}s"
                f", kernel={extra.get('kernel', '?')}]"
            )
        print(
            f"  {bench_dict['name']:<44} "
            f"{bench_dict['wall_s']:>9.4f}s{extra_txt}"
        )

    if args.compare is None:
        return 0
    baseline_path = Path(args.compare)
    if not baseline_path.exists():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2
    baseline_report = load_report(baseline_path)
    comparison = compare_reports(
        report, baseline_report, tolerance=args.tolerance
    )
    print()
    print(comparison.format_table())
    if not comparison.rows:
        print("no common benchmarks to compare", file=sys.stderr)
        return 2

    # A shared/virtualized runner can hit a slow phase for one whole
    # suite pass; a *code* regression reproduces on an independent
    # re-measurement (with its own calibration), noise usually doesn't.
    suspects = [r.name for r in comparison.regressions]
    for attempt in range(args.retries):
        if not suspects:
            break
        print(
            f"re-measuring {len(suspects)} regressed benchmark(s) "
            f"(attempt {attempt + 1}/{args.retries}) ...",
            flush=True,
        )
        still = []
        for name in suspects:
            retry = run_suite(quick=args.quick, only=name)
            verdict = compare_reports(
                retry, baseline_report, tolerance=args.tolerance
            )
            if any(r.regressed for r in verdict.rows):
                still.append(name)
        suspects = still
    if suspects:
        print(f"PERF REGRESSION: {', '.join(suspects)}", file=sys.stderr)
        return 1
    if comparison.regressions:
        print("initial regressions did not reproduce; treating as noise")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
