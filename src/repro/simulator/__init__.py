"""Discrete-event simulation kernel.

A tiny, deterministic, generator-based discrete-event engine in the style
of SimPy, purpose-built for simulating message-passing machines:

* :class:`~repro.simulator.engine.Engine` — the event loop: a binary-heap
  calendar queue with a virtual clock in **microseconds**.
* :class:`~repro.simulator.events.Event` and friends — one-shot
  triggerable events; processes block on them by ``yield``-ing them.
* :class:`~repro.simulator.process.Process` — wraps a Python generator
  into a simulated thread of control.
* :class:`~repro.simulator.resources.Store` — a FIFO buffer used for
  processor inboxes and link-arbitration queues.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
simulation is a pure function of its inputs and seeds.
"""

from __future__ import annotations

from repro.simulator.engine import Engine
from repro.simulator.events import AllOf, AnyOf, Event, Timeout
from repro.simulator.process import Process
from repro.simulator.resources import Store
from repro.simulator.trace import (
    NULL_SPAN,
    SPAN_BEGIN,
    SPAN_END,
    Span,
    TraceRecord,
    Tracer,
)

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Store",
    "Tracer",
    "TraceRecord",
    "Span",
    "NULL_SPAN",
    "SPAN_BEGIN",
    "SPAN_END",
]
