"""Unit tests for the path-reservation fabric (timing + contention)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network import Fabric, LinearArray, Mesh2D


def make_fabric(topo=None, **kw):
    defaults = dict(t_byte=0.01, t_hop=1.0, route_setup=0.0, contention=True)
    defaults.update(kw)
    return Fabric(topo or LinearArray(8), **defaults)


class TestUncontendedTiming:
    def test_duration_formula(self):
        fabric = make_fabric(route_setup=2.0)
        stats = fabric.transfer(0, 3, nbytes=1000, now=0.0)
        # 3 hops * 1.0 + 1000 * 0.01 + setup 2.0
        assert stats.start_time == 0.0
        assert stats.finish_time == pytest.approx(15.0)
        assert stats.hops == 3

    def test_self_send_is_free_and_instant(self):
        fabric = make_fabric()
        stats = fabric.transfer(4, 4, nbytes=10_000, now=7.0)
        assert stats.start_time == stats.finish_time == 7.0
        assert stats.hops == 0
        assert fabric.transfers == 1

    def test_negative_size_rejected(self):
        fabric = make_fabric()
        with pytest.raises(ConfigurationError):
            fabric.transfer(0, 1, nbytes=-1, now=0.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fabric(t_byte=-0.01)


class TestContention:
    def test_shared_link_serializes(self):
        fabric = make_fabric()
        a = fabric.transfer(0, 3, nbytes=100, now=0.0)  # holds links 0..3
        b = fabric.transfer(1, 3, nbytes=100, now=0.0)  # shares wire 2->3
        assert a.start_time == 0.0
        assert b.start_time == pytest.approx(a.finish_time)
        assert b.link_wait == pytest.approx(a.finish_time)

    def test_disjoint_paths_run_in_parallel(self):
        fabric = make_fabric()
        a = fabric.transfer(0, 1, nbytes=100, now=0.0)
        b = fabric.transfer(4, 5, nbytes=100, now=0.0)
        assert a.start_time == 0.0
        assert b.start_time == 0.0

    def test_ejection_channel_is_a_hotspot(self):
        # Messages from different directions to the same destination
        # serialise on the destination's ejection channel — the 2-Step
        # gather bottleneck.
        topo = Mesh2D(3, 3)
        fabric = Fabric(topo, t_byte=0.01, t_hop=1.0)
        center = topo.node_at(1, 1)
        north = topo.node_at(0, 1)
        south = topo.node_at(2, 1)
        a = fabric.transfer(north, center, nbytes=100, now=0.0)
        b = fabric.transfer(south, center, nbytes=100, now=0.0)
        assert b.start_time == pytest.approx(a.finish_time)

    def test_contention_disabled_ablation(self):
        fabric = make_fabric(contention=False)
        a = fabric.transfer(0, 3, nbytes=100, now=0.0)
        b = fabric.transfer(1, 3, nbytes=100, now=0.0)
        assert a.start_time == b.start_time == 0.0
        assert fabric.total_link_wait == 0.0

    def test_link_frees_after_finish(self):
        fabric = make_fabric()
        a = fabric.transfer(0, 2, nbytes=100, now=0.0)
        b = fabric.transfer(0, 2, nbytes=100, now=a.finish_time + 5.0)
        assert b.link_wait == 0.0


class TestStatistics:
    def test_transfer_count_and_wait_accumulate(self):
        fabric = make_fabric()
        fabric.transfer(0, 3, nbytes=100, now=0.0)
        fabric.transfer(1, 3, nbytes=100, now=0.0)
        assert fabric.transfers == 2
        assert fabric.total_link_wait > 0.0

    def test_utilization_bounded(self):
        fabric = make_fabric()
        fabric.transfer(0, 7, nbytes=1000, now=0.0)
        u = fabric.link_utilization()
        assert 0.0 < u <= 1.0

    def test_utilization_zero_without_traffic(self):
        assert make_fabric().link_utilization() == 0.0

    def test_hottest_links(self):
        fabric = make_fabric()
        fabric.transfer(0, 3, nbytes=1000, now=0.0)
        hot = fabric.hottest_links(k=2)
        assert len(hot) == 2
        assert hot[0][0] >= hot[1][0]

    def test_reset_clears_state(self):
        fabric = make_fabric()
        fabric.transfer(0, 3, nbytes=100, now=0.0)
        fabric.reset()
        assert fabric.transfers == 0
        stats = fabric.transfer(0, 3, nbytes=100, now=0.0)
        assert stats.link_wait == 0.0


class TestTransferStats:
    def test_derived_properties(self):
        fabric = make_fabric()
        stats = fabric.transfer(0, 2, nbytes=500, now=3.0)
        assert stats.request_time == 3.0
        assert stats.duration == pytest.approx(2 * 1.0 + 500 * 0.01)
        assert stats.link_wait == 0.0
