"""Unit tests for the extended collectives (scatter/reduce/ring)."""

from __future__ import annotations

import pytest

from repro.errors import CommError
from repro.machines import Machine
from repro.mpsim import collectives as coll
from repro.network.linear import LinearArray
from tests.conftest import TEST_PARAMS


@pytest.fixture(params=[3, 6, 8])
def machine(request):
    return Machine(LinearArray(request.param), TEST_PARAMS, kind="test")


class TestScatter:
    def test_each_rank_gets_its_item(self, machine):
        def program(comm):
            items = (
                [f"item{r}" for r in range(comm.size)]
                if comm.rank == 0
                else None
            )
            mine = yield from coll.scatter(comm, items, nbytes_each=128)
            return mine

        result = machine.run(program)
        assert list(result.returns) == [f"item{r}" for r in range(machine.p)]

    def test_nonzero_root(self, machine):
        root = machine.p - 1

        def program(comm):
            items = (
                [r * 2 for r in range(comm.size)] if comm.rank == root else None
            )
            mine = yield from coll.scatter(comm, items, nbytes_each=64, root=root)
            return mine

        result = machine.run(program)
        assert list(result.returns) == [r * 2 for r in range(machine.p)]

    def test_root_without_payloads_raises(self, machine):
        def program(comm):
            yield from coll.scatter(comm, None, nbytes_each=8)

        with pytest.raises(CommError):
            machine.run(program)

    def test_message_count_logarithmic_at_root(self, machine):
        """Binomial scatter: the root sends ceil(log2 p) bundles."""

        def program(comm):
            items = list(range(comm.size)) if comm.rank == 0 else None
            yield from coll.scatter(comm, items, nbytes_each=64)

        result = machine.run(program)
        # total message count of a binomial scatter is p - 1
        assert result.metrics.total_messages == machine.p - 1


class TestReduce:
    def test_sum_at_root(self, machine):
        def program(comm):
            return (
                yield from coll.reduce(
                    comm, comm.rank + 1, nbytes=8, op=lambda a, b: a + b
                )
            )

        result = machine.run(program)
        p = machine.p
        assert result.returns[0] == p * (p + 1) // 2
        assert all(v is None for v in result.returns[1:])

    def test_non_commutative_safety_with_max(self, machine):
        def program(comm):
            return (
                yield from coll.reduce(
                    comm, comm.rank, nbytes=8, op=max, root=1
                )
            )

        result = machine.run(program)
        assert result.returns[1] == machine.p - 1

    def test_allreduce_everywhere(self, machine):
        def program(comm):
            return (
                yield from coll.allreduce(
                    comm, comm.rank + 1, nbytes=8, op=lambda a, b: a + b
                )
            )

        result = machine.run(program)
        p = machine.p
        assert all(v == p * (p + 1) // 2 for v in result.returns)


class TestRingAllgather:
    def test_everyone_collects_everything(self, machine):
        def program(comm):
            items = yield from coll.ring_allgather(
                comm, f"x{comm.rank}", nbytes=64
            )
            return tuple(items)

        result = machine.run(program)
        expected = tuple(f"x{r}" for r in range(machine.p))
        assert all(v == expected for v in result.returns)

    def test_message_count_is_p_times_p_minus_1(self, machine):
        def program(comm):
            yield from coll.ring_allgather(comm, comm.rank, nbytes=32)

        result = machine.run(program)
        p = machine.p
        assert result.metrics.total_messages == p * (p - 1)

    def test_per_rank_traffic_balanced(self, machine):
        """Every rank sends exactly p - 1 messages (bandwidth optimal)."""

        def program(comm):
            yield from coll.ring_allgather(comm, comm.rank, nbytes=32)

        # use a fresh collector via machine.run, then inspect totals
        result = machine.run(program)
        assert result.metrics.send_recv_ops == 2 * (machine.p - 1)
