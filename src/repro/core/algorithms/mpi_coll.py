"""MPI library-collective algorithms: MPI_AllGather and MPI_Alltoall.

These are the paper's "use the existing communication routines"
variants: structurally identical to ``2-Step`` and ``PersAlltoAll``
(§5.1 calls them "the MPI versions"), but issued through the machine's
*library collective* tier:

* on the Paragon that tier is ordinary sends with the measured MPI
  penalty on top — so the MPI versions run slightly behind their NX
  twins (Figure 3);
* on the T3D the tier is the shmem fast path
  (``collective_overhead_scale << 1``), which is why ``MPI_Alltoall``
  — no combining, no waiting, tiny per-message software cost — wins
  there (Figure 13), inverting the Paragon's ordering.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.algorithms.base import BroadcastAlgorithm, register
from repro.core.algorithms.pers_alltoall import build_pers_alltoall_schedule
from repro.core.algorithms.two_step import build_two_step_schedule
from repro.core.problem import BroadcastProblem
from repro.core.schedule import Schedule, Transfer

__all__ = ["MPIAllGather", "MPIAlltoAll", "build_pipelined_allgather_schedule"]


def build_pipelined_allgather_schedule(
    problem: BroadcastProblem, name: str, root: int = 0
) -> Schedule:
    """Vendor-optimised Allgatherv: flat gather + segmented ring broadcast.

    The gather step is the same flat s-to-one of 2-Step — it keeps the
    congestion at ``P0`` the paper observes (§5.3): all contributions
    serialise on the root's ejection channel and receive path.  The
    broadcast step is a *pipelined ring*: the root streams each gathered
    message, split into ``collective_segment_bytes`` segments, along the
    machine's linear order; every rank forwards segment *q* one hop per
    round.  Gather and broadcast overlap through data-parallel
    synchronisation, so spreading a fixed total over more sources
    shortens the pipeline fill — the Figure-12 effect.
    """
    params = problem.machine.params
    seg_size = params.collective_segment_bytes
    schedule = Schedule(problem, algorithm=name)
    gather = [
        Transfer(src, root, frozenset((src,)))
        for src in problem.sources
        if src != root
    ]
    with schedule.span("gather"):
        schedule.add_round(gather, label="gatherv", collective=True, mpi=True)
    # The stream of (message, segment) items the ring carries, in source
    # order (the order Allgatherv concatenates contributions).
    stream: List[tuple] = []
    for src in problem.sources:
        size = problem.size_of(src)
        nseg = max(1, math.ceil(size / seg_size))
        base = size // nseg
        for q in range(nseg):
            seg_bytes = base + (size - base * nseg if q == nseg - 1 else 0)
            stream.append((src, max(seg_bytes, 1)))
    order = problem.machine.linear_order()
    # Rotate so the ring starts at the root.
    start = order.index(root)
    ring = order[start:] + order[:start]
    edges = list(zip(ring, ring[1:]))  # p-1 forwarding hops, no wrap
    num_items = len(stream)
    num_rounds = num_items + len(edges) - 1
    with schedule.span("ring"):
        for r in range(num_rounds):
            transfers = []
            for j, (u, v) in enumerate(edges):
                q = r - j
                if 0 <= q < num_items:
                    src_msg, seg_bytes = stream[q]
                    transfers.append(
                        Transfer(u, v, frozenset((src_msg,)), nbytes_override=seg_bytes)
                    )
            schedule.add_round(
                transfers, label=f"ring-{r}", collective=True, mpi=True
            )
    return schedule


@register
class MPIAllGather(BroadcastAlgorithm):
    """``MPI_Allgatherv`` of the s messages.

    The internal structure follows the machine's
    ``collective_style``: *monolithic* (gather at P0, combine,
    binomial-broadcast the concatenation — the MPICH-reference style
    the Paragon ran) or *pipelined* (flat gather overlapped with a
    segmented ring broadcast — the Cray-optimised style).
    """

    name = "MPI_AllGather"
    requires_mesh = False

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        if problem.machine.params.collective_style == "pipelined":
            return build_pipelined_allgather_schedule(problem, self.name)
        return build_two_step_schedule(
            problem, self.name, collective=True, mpi=True
        )

    def schedule_depends_on_sizes(self, problem: BroadcastProblem) -> bool:
        # The pipelined style segments each message by
        # ``collective_segment_bytes``, so round count and transfer
        # byte overrides change with the size table.
        return problem.machine.params.collective_style == "pipelined"


@register
class MPIAlltoAll(BroadcastAlgorithm):
    """``MPI_Alltoallv`` with the s messages personalized to all ranks."""

    name = "MPI_Alltoall"
    requires_mesh = False

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        return build_pers_alltoall_schedule(
            problem, self.name, collective=True, mpi=True
        )
