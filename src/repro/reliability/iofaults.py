"""Injectable IO backend with a seeded fault grammar.

Every filesystem call the sweep's storage layers make —
:class:`~repro.sweep.cache.ResultCache` and
:class:`~repro.sweep.distributed.WorkQueue` — routes through an
:class:`IOBackend`.  The default backend (:data:`RAW_IO`) is a thin
passthrough to :mod:`os` / :mod:`pathlib`; :class:`FaultyIO` counts
operations and applies an :class:`IOFaultPlan` against the counter, so
a test (or the chaos harness) can make *exactly* the K-th filesystem
operation tear, fail, stall, or kill the process.

The textual grammar mirrors the simulator's fault specs
(:mod:`repro.faults.spec`): ``;``-separated clauses, canonical
spelling, addressable from a seed::

    plan      := clause (";" clause)*
    clause    := torn | err | crash | stall
    torn      := "torn:write@" INDEX        (the write persists only a prefix)
    err       := "err:" ERRNO "@" INDEX     (e.g. err:ENOSPC@5, raises OSError)
    crash     := "crash@" INDEX             (raises SimulatedCrash, a
                                             BaseException — pierces the
                                             worker's error handling the way
                                             SIGKILL would)
    stall     := "stall:" OP "@" INDEX "+" SECONDS   (OP = read | write)

``INDEX`` counts the backend's *counted* operations (reads, writes,
replaces, exclusive creates, unlinks) from 0.  A fault whose index is
never reached is a no-op, exactly like a simulated fault scheduled
after the run ends.
"""

from __future__ import annotations

import errno as errno_module
import os
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "COUNTED_OPS",
    "IOBackend",
    "IOFault",
    "IOFaultPlan",
    "FaultyIO",
    "RAW_IO",
    "SimulatedCrash",
    "parse_io_fault",
]

#: Operation kinds that advance the fault-plan index.  Metadata-only
#: calls (mkdir, stat, exists) are not counted: a crash between a mkdir
#: and the following write is indistinguishable from a crash at the
#: write, so counting them would only inflate the harness's sweep.
COUNTED_OPS = ("read", "write", "replace", "create", "unlink")


class SimulatedCrash(BaseException):
    """The process "dies" at an injected ``crash@K`` point.

    Derives from :class:`BaseException` (not :class:`Exception`) so it
    pierces the worker's point-evaluation ``except Exception`` handling
    exactly the way SIGKILL would — no code path can accidentally
    swallow a crash and keep going.
    """


@dataclass(frozen=True)
class IOFault:
    """One injected IO fault, addressed by operation index.

    ``kind`` is one of ``torn`` / ``err`` / ``crash`` / ``stall``;
    ``op`` scopes ``torn`` and ``stall`` to an operation kind
    (``write`` / ``read``); ``errno_name`` names the :mod:`errno`
    constant an ``err`` fault raises; ``duration_s`` is how long a
    ``stall`` sleeps.
    """

    kind: str
    index: int
    op: str = ""
    errno_name: str = ""
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(
                f"IO fault index must be >= 0, got {self.index}"
            )
        if self.kind == "err" and not hasattr(
            errno_module, self.errno_name
        ):
            raise ConfigurationError(
                f"unknown errno name {self.errno_name!r} in IO fault"
            )

    def canonical(self) -> str:
        if self.kind == "torn":
            return f"torn:{self.op}@{self.index}"
        if self.kind == "err":
            return f"err:{self.errno_name}@{self.index}"
        if self.kind == "crash":
            return f"crash@{self.index}"
        return f"stall:{self.op}@{self.index}+{self.duration_s:g}"


_TORN_RE = re.compile(r"^torn:(?P<op>write)@(?P<index>\d+)$")
_ERR_RE = re.compile(r"^err:(?P<name>[A-Z][A-Z0-9]*)@(?P<index>\d+)$")
_CRASH_RE = re.compile(r"^crash@(?P<index>\d+)$")
_STALL_RE = re.compile(
    r"^stall:(?P<op>read|write)@(?P<index>\d+)"
    r"\+(?P<duration>[0-9]+(?:\.[0-9]+)?)$"
)


def parse_io_fault(text: str) -> IOFault:
    """Parse one IO-fault clause (``torn:write@K``, ``err:ENOSPC@K``, ...)."""
    clause = text.strip()
    match = _TORN_RE.match(clause)
    if match:
        return IOFault("torn", int(match.group("index")), op=match.group("op"))
    match = _ERR_RE.match(clause)
    if match:
        return IOFault(
            "err", int(match.group("index")), errno_name=match.group("name")
        )
    match = _CRASH_RE.match(clause)
    if match:
        return IOFault("crash", int(match.group("index")))
    match = _STALL_RE.match(clause)
    if match:
        return IOFault(
            "stall",
            int(match.group("index")),
            op=match.group("op"),
            duration_s=float(match.group("duration")),
        )
    raise ConfigurationError(
        f"bad IO fault clause {text!r}; expected torn:write@K, err:ERRNO@K, "
        "crash@K or stall:read@K+D (see docs/RELIABILITY.md)"
    )


@dataclass(frozen=True)
class IOFaultPlan:
    """An immutable, canonically ordered set of injected IO faults.

    Like :class:`~repro.faults.spec.FaultSchedule`, parsing is
    normalising: faults sort by ``(index, canonical)``, so two spellings
    of one plan share a canonical string.  An empty plan is legal (the
    counting-only shim the harness's probe pass uses).
    """

    faults: Tuple[IOFault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.index, f.canonical()))
        )
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def parse(cls, spec: Union[str, Iterable[Union[str, IOFault]]]) -> "IOFaultPlan":
        """Parse a ``;``-separated spec string or an iterable of clauses."""
        if isinstance(spec, str):
            clauses = [c for c in (s.strip() for s in spec.split(";")) if c]
            return cls(tuple(parse_io_fault(c) for c in clauses))
        return cls(
            tuple(
                item if isinstance(item, IOFault) else parse_io_fault(item)
                for item in spec
            )
        )

    def canonical(self) -> str:
        """Normalised spec string (the plan's identity)."""
        return ";".join(fault.canonical() for fault in self.faults)

    def by_index(self) -> Dict[int, List[IOFault]]:
        """Faults grouped by operation index."""
        grouped: Dict[int, List[IOFault]] = {}
        for fault in self.faults:
            grouped.setdefault(fault.index, []).append(fault)
        return grouped

    def __str__(self) -> str:
        return self.canonical()


class IOBackend:
    """The real filesystem, as the narrow surface the storage layers use.

    Subclasses (``FaultyIO``) intercept these calls; production code
    uses the shared :data:`RAW_IO` instance.  Paths are
    :class:`pathlib.Path` or strings.
    """

    def read_text(self, path: Union[str, pathlib.Path]) -> str:
        """Read a whole file (``FileNotFoundError`` on a missing one)."""
        return pathlib.Path(path).read_text()

    def write_text(self, path: Union[str, pathlib.Path], text: str) -> None:
        """Write a whole file (non-atomic; pair with :meth:`replace`)."""
        pathlib.Path(path).write_text(text)

    def replace(
        self, src: Union[str, pathlib.Path], dst: Union[str, pathlib.Path]
    ) -> None:
        """Atomic rename, replacing ``dst``."""
        os.replace(src, dst)

    def create_excl(self, path: Union[str, pathlib.Path], text: str) -> None:
        """Exclusive create-and-write (``FileExistsError`` when present)."""
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)

    def unlink(self, path: Union[str, pathlib.Path]) -> None:
        """Delete a file (``FileNotFoundError`` on a missing one)."""
        pathlib.Path(path).unlink()

    def mkdir(self, path: Union[str, pathlib.Path]) -> None:
        """Create a directory tree (idempotent); not a counted op."""
        pathlib.Path(path).mkdir(parents=True, exist_ok=True)

    def exists(self, path: Union[str, pathlib.Path]) -> bool:
        """Existence probe; not a counted op."""
        return pathlib.Path(path).exists()


#: The shared passthrough backend production code defaults to.
RAW_IO = IOBackend()


class FaultyIO(IOBackend):
    """An :class:`IOBackend` that counts ops and applies a fault plan.

    ``ops`` is the number of counted operations performed so far — the
    index the plan's clauses address.  ``trace`` records every counted
    op as ``(index, kind, path)`` so the crash-consistency harness can
    probe a sequence's length and label its crash points.  With an
    empty plan this is a pure counting shim.

    Fault semantics at index K:

    * ``torn:write@K`` — the write *appears to succeed* but persists
      only the first half of the bytes (a torn page / partial flush).
      Applies to plain writes and exclusive creates alike — both
      persist caller bytes.  The atomic-replace discipline then
      publishes a corrupt file, which verify-on-read must catch.
    * ``err:ERRNO@K`` — the op raises ``OSError(ERRNO)`` before
      touching the filesystem (ENOSPC, EIO, ...).
    * ``crash@K`` — raises :class:`SimulatedCrash` before the op runs:
      everything already durable stays, the op itself never happens.
    * ``stall:OP@K+D`` — an op of kind ``OP`` sleeps ``D`` seconds
      first (a wedged NFS read, a paused process), then proceeds
      normally.  Other kinds at that index stall too only if they
      match ``OP``.
    """

    def __init__(
        self,
        plan: Union[IOFaultPlan, str, None] = None,
        *,
        sleep=time.sleep,
    ) -> None:
        if plan is None:
            plan = IOFaultPlan()
        elif isinstance(plan, str):
            plan = IOFaultPlan.parse(plan)
        self.plan = plan
        self._by_index = plan.by_index()
        self.ops = 0
        self.trace: List[Tuple[int, str, str]] = []
        self._sleep = sleep

    def _step(self, kind: str, path: Union[str, pathlib.Path]) -> List[IOFault]:
        """Advance the op counter; raise/stall per the plan.

        Returns the faults that *modify* the op itself (currently only
        ``torn``), for the caller to apply.
        """
        index = self.ops
        self.ops += 1
        self.trace.append((index, kind, str(path)))
        modifiers: List[IOFault] = []
        for fault in self._by_index.get(index, ()):
            if fault.kind == "crash":
                raise SimulatedCrash(f"injected crash@{index} before {kind}")
            if fault.kind == "err":
                code = getattr(errno_module, fault.errno_name)
                raise OSError(
                    code,
                    f"injected {fault.errno_name}@{index} on {kind}",
                    str(path),
                )
            if fault.kind == "stall" and fault.op == kind:
                self._sleep(fault.duration_s)
            if fault.kind == "torn" and kind in ("write", "create"):
                modifiers.append(fault)
        return modifiers

    # -- counted operations ------------------------------------------------
    def read_text(self, path: Union[str, pathlib.Path]) -> str:
        self._step("read", path)
        return super().read_text(path)

    def write_text(self, path: Union[str, pathlib.Path], text: str) -> None:
        modifiers = self._step("write", path)
        if any(f.kind == "torn" for f in modifiers):
            data = text.encode("utf-8")
            text = data[: len(data) // 2].decode("utf-8", errors="ignore")
        super().write_text(path, text)

    def replace(
        self, src: Union[str, pathlib.Path], dst: Union[str, pathlib.Path]
    ) -> None:
        self._step("replace", dst)
        super().replace(src, dst)

    def create_excl(self, path: Union[str, pathlib.Path], text: str) -> None:
        modifiers = self._step("create", path)
        if any(f.kind == "torn" for f in modifiers):
            data = text.encode("utf-8")
            text = data[: len(data) // 2].decode("utf-8", errors="ignore")
        super().create_excl(path, text)

    def unlink(self, path: Union[str, pathlib.Path]) -> None:
        self._step("unlink", path)
        super().unlink(path)
