"""Name → distribution lookup used by the bench harness and CLI."""

from __future__ import annotations

from typing import Dict, List

from repro.distributions.band import BandDistribution
from repro.distributions.base import SourceDistribution
from repro.distributions.cross import CrossDistribution
from repro.distributions.diagonal import (
    LeftDiagonalDistribution,
    RightDiagonalDistribution,
)
from repro.distributions.equal import EqualDistribution
from repro.distributions.random_dist import RandomDistribution
from repro.distributions.row_col import ColumnDistribution, RowDistribution
from repro.distributions.square import SquareBlockDistribution
from repro.errors import DistributionError

__all__ = ["DISTRIBUTIONS", "get_distribution", "list_distributions"]

#: The paper's eight §4 distributions plus the random baseline,
#: keyed by the paper's abbreviations.
DISTRIBUTIONS: Dict[str, SourceDistribution] = {
    dist.key: dist
    for dist in (
        RowDistribution(),
        ColumnDistribution(),
        EqualDistribution(),
        RightDiagonalDistribution(),
        LeftDiagonalDistribution(),
        BandDistribution(),
        CrossDistribution(),
        SquareBlockDistribution(),
        RandomDistribution(),
    )
}


def get_distribution(key: str) -> SourceDistribution:
    """Distribution by paper abbreviation (``"R"``, ``"Dr"``, ...)."""
    try:
        return DISTRIBUTIONS[key]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise DistributionError(
            f"unknown distribution {key!r}; known: {known}"
        ) from None


def list_distributions() -> List[str]:
    """All registered distribution keys, sorted."""
    return sorted(DISTRIBUTIONS)
