"""Unit tests for the store-and-forward switching mode."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.machines import paragon
from repro.machines.paragon import PARAGON_PARAMS
from repro.network import Fabric, LinearArray
from tests.conftest import TEST_PARAMS


def make_fabric(**kw):
    defaults = dict(t_byte=0.01, t_hop=1.0, route_setup=0.0)
    defaults.update(kw)
    return Fabric(LinearArray(8), **defaults)


class TestStoreAndForwardTiming:
    def test_duration_multiplies_with_hops(self):
        saf = make_fabric(switching="store_and_forward")
        stats = saf.transfer(0, 3, nbytes=1000, now=0.0)
        # path = inj + 3 wires + ej = 5 links, each 1.0 + 1000*0.01
        assert stats.finish_time == pytest.approx(5 * 11.0)

    def test_wormhole_is_faster_over_distance(self):
        worm = make_fabric(switching="wormhole")
        saf = make_fabric(switching="store_and_forward")
        t_worm = worm.transfer(0, 7, nbytes=1000, now=0.0).finish_time
        t_saf = saf.transfer(0, 7, nbytes=1000, now=0.0).finish_time
        assert t_saf > 2.0 * t_worm

    def test_single_hop_costs_match_modulo_endpoints(self):
        # one wire hop: wormhole = 1*t_hop + bytes; SAF = 3 links
        worm = make_fabric(switching="wormhole")
        saf = make_fabric(switching="store_and_forward")
        t_worm = worm.transfer(0, 1, nbytes=100, now=0.0).finish_time
        t_saf = saf.transfer(0, 1, nbytes=100, now=0.0).finish_time
        assert t_saf == pytest.approx(3 * (1.0 + 1.0))
        assert t_worm == pytest.approx(1.0 + 1.0)

    def test_self_send_still_free(self):
        saf = make_fabric(switching="store_and_forward")
        stats = saf.transfer(4, 4, nbytes=1000, now=5.0)
        assert stats.finish_time == 5.0

    def test_links_released_hop_by_hop(self):
        """A second message can start on link 1 while the first has
        moved on — SAF pipelines across messages."""
        saf = make_fabric(switching="store_and_forward")
        first = saf.transfer(0, 7, nbytes=1000, now=0.0)
        second = saf.transfer(0, 1, nbytes=1000, now=0.0)
        # second waits only for the first to clear the injection and
        # first wire link, not the whole 9-link path
        assert second.finish_time < first.finish_time

    def test_contention_off(self):
        saf = make_fabric(switching="store_and_forward", contention=False)
        a = saf.transfer(0, 3, nbytes=1000, now=0.0)
        b = saf.transfer(1, 3, nbytes=1000, now=0.0)
        assert a.link_wait == b.link_wait == 0.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fabric(switching="circuit")


class TestMachineIntegration:
    def test_params_carry_switching(self):
        saf_params = TEST_PARAMS.with_overrides(switching="store_and_forward")
        assert saf_params.switching == "store_and_forward"
        with pytest.raises(ConfigurationError):
            TEST_PARAMS.with_overrides(switching="optical")

    def test_broadcast_slower_under_saf(self):
        from repro.core import BroadcastProblem, run_broadcast

        worm = paragon(8, 8)
        saf = paragon(
            8, 8,
            params=PARAGON_PARAMS.with_overrides(switching="store_and_forward"),
        )
        sources = tuple(range(0, 64, 7))
        t_worm = run_broadcast(
            BroadcastProblem(worm, sources, message_size=4096), "Br_Lin"
        ).elapsed_us
        t_saf = run_broadcast(
            BroadcastProblem(saf, sources, message_size=4096), "Br_Lin"
        ).elapsed_us
        assert t_saf > t_worm

    def test_delivery_still_verified_under_saf(self):
        from repro.core import BroadcastProblem, run_broadcast

        saf = paragon(
            6, 6,
            params=PARAGON_PARAMS.with_overrides(switching="store_and_forward"),
        )
        problem = BroadcastProblem(saf, (0, 7, 21), message_size=512)
        for name in ("Br_Lin", "Br_xy_source", "2-Step"):
            run_broadcast(problem, name, verify=True)
