"""Regression tests for the bench report-writing machinery.

``benchmarks/conftest.py`` copies every experiment's paper-style table
into ``benchmarks/reports/``.  These tests pin the slug format and the
``mkdir(parents=True)`` behaviour (a fresh checkout has no ``reports/``
directory — and a redirected REPORTS_DIR may be arbitrarily deep).
"""

from __future__ import annotations

import pathlib

import benchmarks.conftest as bench_conftest
from benchmarks.conftest import REPORTS_DIR, run_experiment
from repro.bench.figures import fig01


class OneShotBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture."""

    def pedantic(self, fn, args=(), rounds=1, iterations=1):
        return fn(*args)


def test_reports_dir_points_into_benchmarks_tree():
    assert REPORTS_DIR.name == "reports"
    assert REPORTS_DIR.parent.name == "benchmarks"


def test_quick_report_lands_with_expected_slug(monkeypatch, tmp_path, capsys):
    # Nested path that does not exist yet: exercises parents=True.
    target = tmp_path / "deeply" / "nested" / "reports"
    monkeypatch.setattr(bench_conftest, "REPORTS_DIR", target)

    result = run_experiment(OneShotBenchmark(), fig01, quick=True)

    report_path = target / "figure_1.quick.txt"
    assert report_path.is_file()
    text = report_path.read_text()
    assert text.startswith("=== Figure 1")
    assert text == result.report() + "\n"
    # the table is also echoed to stdout for the pytest -s view
    assert "=== Figure 1" in capsys.readouterr().out


def test_full_mode_uses_full_suffix(monkeypatch, tmp_path):
    target = tmp_path / "reports"
    monkeypatch.setattr(bench_conftest, "REPORTS_DIR", target)
    # fig01 has no quick/full grid split, so full mode is equally cheap.
    run_experiment(OneShotBenchmark(), fig01, quick=False)
    assert (target / "figure_1.full.txt").is_file()
