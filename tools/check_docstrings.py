#!/usr/bin/env python3
"""CI gate: every public module under ``src/repro`` has a module docstring.

A module is *public* when no component of its dotted path starts with an
underscore (``__init__`` and ``__main__`` are public: they are exactly
the files a reader opens first).  Prints offenders and exits non-zero if
any are found, so the docs CI job fails loudly instead of letting an
undocumented module drift in.

Run:  python tools/check_docstrings.py [src-root]
"""

from __future__ import annotations

import ast
import pathlib
import sys


def is_public(relative: pathlib.Path) -> bool:
    for part in relative.with_suffix("").parts:
        if part.startswith("_") and part not in ("__init__", "__main__"):
            return False
    return True


def missing_docstrings(root: pathlib.Path) -> list:
    """Public modules under ``root`` with no module docstring."""
    offenders = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if not is_public(relative):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            offenders.append(relative)
    return offenders


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path("src")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    offenders = missing_docstrings(root)
    if offenders:
        print("public modules missing a module docstring:", file=sys.stderr)
        for relative in offenders:
            print(f"  {root / relative}", file=sys.stderr)
        return 1
    checked = sum(
        1 for p in root.rglob("*.py") if is_public(p.relative_to(root))
    )
    print(f"docstrings ok: {checked} public modules checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
