"""The communication-schedule IR all broadcasting algorithms compile to.

A :class:`Schedule` is a list of :class:`Round`\\ s; a round is a set of
:class:`Transfer`\\ s — (source rank, destination rank, message set).
The *message set* is the set of original source ids whose (combined)
messages travel in that transfer; byte sizes come from the problem's
size table, so the IR is size-agnostic.

Rounds are the paper's *iterations*: they bucket the Figure-2 metrics,
and the executor lets each rank flow through them with only
data-parallel synchronisation (a rank starts its round-k sends as soon
as *its own* round-(k-1) operations finished — no global barrier,
exactly as §5 describes the implementations).

Central invariant (checked by :meth:`Schedule.validate`): **causality**
— a rank may only send message sets it already holds, where holdings
start as ``{rank}`` for sources and grow by receiving.  Validation also
proves **delivery**: after the last round every rank holds every
source's message.  Algorithm unit tests call ``validate`` on every
schedule they build; the hypothesis suite fuzzes it across machines,
distributions, and source counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.core.problem import BroadcastProblem
from repro.errors import AlgorithmError, VerificationError

__all__ = ["Transfer", "Round", "RoundPlan", "Schedule"]

#: One rank's slice of one round, fully resolved at plan-build time:
#: ``(round_idx, phase, collective, mpi, sends, recvs)`` where sends
#: are ``(dst, msgset, nbytes)`` triples and recvs are source ranks.
#: ``phase`` is the round's observability span name (see
#: :meth:`Schedule.span`).  Produced by :meth:`Schedule.lowered` and
#: consumed by both the generator executor and the fastpath evaluator.
RoundPlan = Tuple[
    int, str, bool, bool, List[Tuple[int, FrozenSet[int], int]], List[int]
]


def _phase_of_label(label: str) -> str:
    """Phase name a bare round label implies (``halving-3`` → ``halving``)."""
    if not label:
        return "round"
    stem, dash, suffix = label.rpartition("-")
    if dash and suffix.isdigit():
        return stem
    return label


@dataclass(frozen=True)
class Transfer:
    """One message: ``src`` sends the combined messages of ``msgset`` to ``dst``.

    ``nbytes_override`` lets pipelined schedules move a *segment* of a
    message: the transfer still carries the message ids (for delivery
    tracking) but is charged the segment size.  ``None`` means the full
    combined size from the problem's size table.
    """

    src: int
    dst: int
    msgset: FrozenSet[int]
    nbytes_override: int | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise AlgorithmError(f"self-transfer at rank {self.src}")
        if not self.msgset:
            raise AlgorithmError(
                f"empty transfer {self.src}->{self.dst}; omit it instead"
            )
        if not isinstance(self.msgset, frozenset):
            object.__setattr__(self, "msgset", frozenset(self.msgset))
        if self.nbytes_override is not None and self.nbytes_override <= 0:
            raise AlgorithmError(
                f"nbytes_override must be positive, got {self.nbytes_override}"
            )

    def nbytes(self, problem: BroadcastProblem) -> int:
        """Simulated byte size of this transfer."""
        if self.nbytes_override is not None:
            return self.nbytes_override
        return problem.nbytes(self.msgset)


@dataclass(frozen=True)
class Round:
    """One iteration of an algorithm.

    Attributes
    ----------
    transfers:
        The messages exchanged this round.
    label:
        Human-readable per-round tag (shown in reports/traces).
    collective:
        Whether these messages are issued from inside a library
        collective (charged the machine's collective overhead tier).
    mpi:
        Whether these messages pay the MPI point-to-point overhead
        scale (vs. the native library).
    phase:
        The algorithm phase this round belongs to — the span name the
        executor opens around the round at run time (see
        :meth:`Schedule.span`).  Empty means unphased; the executor
        falls back to the ``label``.
    """

    transfers: Tuple[Transfer, ...]
    label: str = ""
    collective: bool = False
    mpi: bool = False
    phase: str = ""

    def __post_init__(self) -> None:
        # Duplicate (src, dst) pairs within a round are legal: the
        # message layer's per-(source, tag) FIFO (MPI non-overtaking)
        # delivers them in posting order, and the executor merges
        # received message sets commutatively, so matching order cannot
        # affect the outcome (the NaiveIndependent baseline relies on
        # this when its binomial trees collide).
        if not isinstance(self.transfers, tuple):
            object.__setattr__(self, "transfers", tuple(self.transfers))

    def __len__(self) -> int:
        return len(self.transfers)

    def __iter__(self) -> Iterator[Transfer]:
        return iter(self.transfers)


@dataclass
class Schedule:
    """An ordered list of rounds plus the problem it was built for."""

    problem: BroadcastProblem
    rounds: List[Round] = field(default_factory=list)
    algorithm: str = ""
    #: Phase name applied to rounds added inside a :meth:`span` block.
    _phase: str = field(default="", repr=False, compare=False)

    def add_round(
        self,
        transfers: Sequence[Transfer],
        label: str = "",
        collective: bool = False,
        mpi: bool = False,
        phase: str | None = None,
    ) -> None:
        """Append a round (empty rounds are dropped silently).

        ``phase`` defaults to the enclosing :meth:`span` block's name
        (empty outside any block); pass it explicitly to override.
        """
        if transfers:
            self.rounds.append(
                Round(
                    tuple(transfers),
                    label=label,
                    collective=collective,
                    mpi=mpi,
                    phase=self._phase if phase is None else phase,
                )
            )

    @contextmanager
    def span(self, name: str) -> Iterator["Schedule"]:
        """Declare an algorithm phase: rounds added inside carry it.

        This is the *static* half of span instrumentation — algorithms
        annotate the rounds they compile, and the executor opens a
        matching runtime span (per rank, per round) when a tracer is
        attached.  Nesting replaces the phase for the inner block.
        """
        previous = self._phase
        self._phase = name
        try:
            yield self
        finally:
            self._phase = previous

    def extend(self, other: "Schedule") -> None:
        """Append all of ``other``'s rounds (phase composition)."""
        self.rounds.extend(other.rounds)

    # -- queries ------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def num_transfers(self) -> int:
        return sum(len(r) for r in self.rounds)

    def transfers_of(self, rank: int) -> Tuple[List[List[Transfer]], List[List[Transfer]]]:
        """Per-round ``(sends, recvs)`` lists for one rank."""
        sends: List[List[Transfer]] = []
        recvs: List[List[Transfer]] = []
        for rnd in self.rounds:
            sends.append([t for t in rnd if t.src == rank])
            recvs.append([t for t in rnd if t.dst == rank])
        return sends, recvs

    def lowered(self) -> List[List[RoundPlan]]:
        """Per-rank round plans: the schedule resolved for execution.

        For every rank, the rounds it participates in (in round order),
        each entry carrying the round index, the observability phase
        name, the overhead-mode flags, the resolved ``(dst, msgset,
        nbytes)`` send triples and the receive source ranks — everything
        an executor needs, with no remaining schedule bookkeeping.

        Both consumers — the generator-based
        :class:`~repro.core.executor.ScheduleExecutor` and the
        :mod:`repro.fastpath` batch evaluator — lower through this one
        method, so they are guaranteed to see identical round plans
        (ordering included: sends and recvs appear in transfer order
        within each round, which fixes the simulated issue order).
        """
        p = self.problem.p
        plan: List[List[RoundPlan]] = [[] for _ in range(p)]
        for round_idx, rnd in enumerate(self.rounds):
            phase = rnd.phase or _phase_of_label(rnd.label)
            touched: Dict[
                int, Tuple[List[Tuple[int, FrozenSet[int], int]], List[int]]
            ] = {}
            for t in rnd:
                touched.setdefault(t.src, ([], []))[0].append(
                    (t.dst, t.msgset, t.nbytes(self.problem))
                )
                touched.setdefault(t.dst, ([], []))[1].append(t.src)
            for rank, (sends, recvs) in touched.items():
                plan[rank].append(
                    (round_idx, phase, rnd.collective, rnd.mpi, sends, recvs)
                )
        return plan

    def holdings_after(self, upto: int | None = None) -> List[Set[int]]:
        """Message sets held by each rank after round ``upto`` (exclusive).

        ``upto=None`` means after the whole schedule.
        """
        holdings: List[Set[int]] = [set(h) for h in self.problem.initial_holdings()]
        stop = self.num_rounds if upto is None else upto
        for rnd in self.rounds[:stop]:
            # Snapshot semantics: everything sent in a round left the
            # sender before anything received in the round is usable.
            deliveries: List[Tuple[int, FrozenSet[int]]] = [
                (t.dst, t.msgset) for t in rnd
            ]
            for dst, msgset in deliveries:
                holdings[dst] |= msgset
        return holdings

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check causality and delivery; raises on violation.

        * causality: every transfer's ``msgset`` is a subset of what its
          sender held *before* the round began;
        * rank bounds: all endpoints within ``[0, p)``;
        * delivery: final holdings equal the full source set everywhere.
        """
        p = self.problem.p
        all_sources = set(self.problem.sources)
        holdings: List[Set[int]] = [set(h) for h in self.problem.initial_holdings()]
        for round_idx, rnd in enumerate(self.rounds):
            pending: List[Tuple[int, FrozenSet[int]]] = []
            for t in rnd:
                if not (0 <= t.src < p and 0 <= t.dst < p):
                    raise AlgorithmError(
                        f"{self.algorithm}: round {round_idx} transfer "
                        f"{t.src}->{t.dst} outside [0, {p})"
                    )
                if not t.msgset <= holdings[t.src]:
                    missing = sorted(t.msgset - holdings[t.src])
                    raise AlgorithmError(
                        f"{self.algorithm}: round {round_idx}: rank {t.src} "
                        f"sends messages {missing} it does not hold"
                    )
                if not t.msgset <= all_sources:
                    raise AlgorithmError(
                        f"{self.algorithm}: round {round_idx}: transfer "
                        f"carries non-source ids {sorted(t.msgset - all_sources)}"
                    )
                pending.append((t.dst, t.msgset))
            for dst, msgset in pending:
                holdings[dst] |= msgset
        incomplete = [
            rank for rank, held in enumerate(holdings) if held != all_sources
        ]
        if incomplete:
            example = incomplete[0]
            missing = sorted(all_sources - holdings[example])
            raise VerificationError(
                f"{self.algorithm}: {len(incomplete)} rank(s) incomplete "
                f"after {self.num_rounds} rounds; e.g. rank {example} "
                f"missing {missing[:8]}"
            )

    def phases(self) -> List[Tuple[str, int, int]]:
        """Contiguous phase runs as ``(name, first_round, last_round)``.

        Unphased rounds fall back to their label with any trailing
        ``-<n>`` counter stripped, so legacy labels like ``halving-3``
        group under ``halving``.
        """
        out: List[Tuple[str, int, int]] = []
        for idx, rnd in enumerate(self.rounds):
            name = rnd.phase or _phase_of_label(rnd.label)
            if out and out[-1][0] == name:
                out[-1] = (name, out[-1][1], idx)
            else:
                out.append((name, idx, idx))
        return out

    # -- statistics -----------------------------------------------------------
    def bytes_by_round(self) -> List[int]:
        """Total bytes moved per round."""
        return [
            sum(t.nbytes(self.problem) for t in rnd) for rnd in self.rounds
        ]

    def max_transfer_bytes(self) -> int:
        """Largest single message in the schedule (0 if empty)."""
        return max(
            (t.nbytes(self.problem) for rnd in self.rounds for t in rnd),
            default=0,
        )

    def ops_by_rank(self) -> Dict[int, int]:
        """Send+recv operation count per rank (only ranks with ops)."""
        ops: Dict[int, int] = {}
        for rnd in self.rounds:
            for t in rnd:
                ops[t.src] = ops.get(t.src, 0) + 1
                ops[t.dst] = ops.get(t.dst, 0) + 1
        return ops

    def __repr__(self) -> str:
        return (
            f"<Schedule {self.algorithm or 'anonymous'}: "
            f"{self.num_rounds} rounds, {self.num_transfers} transfers>"
        )
