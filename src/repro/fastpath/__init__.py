"""Structure-of-arrays schedule fast path: kernel replay + plan cache.

The paper's algorithms compile to *static* schedules — every round,
transfer, link path and software overhead is known before the clock
starts.  This package exploits that staticness in three layers:

* :mod:`~.lowering` turns a built :class:`~repro.core.schedule.Schedule`
  into a structure-of-arrays :class:`FastPlan` (contiguous int32/int64/
  float64 arrays for op streams, per-send costs, round tables, inbox
  segments, and CSR message sets), size-rebindable across message-length
  sweeps;
* :mod:`~.kernel` replays a bound plan in **one typed function** written
  against the Python/numba common subset — compiled with ``numba.njit``
  when available (``REPRO_FASTPATH_JIT``), executed as plain Python on
  list views otherwise, both modes sharing the same arithmetic source —
  reproducing the generator engine's event ordering **bit-for-bit**
  (same ``(time, seq)`` heap discipline, same float expressions, same
  metrics accumulation order);
* :mod:`~.plancache` amortizes schedule build + validation + lowering
  across sweep points that share the schedule-determining data
  (machine spec, algorithm, source placement), rebinding sizes and
  seeds per point.

Selection is wired through ``run_broadcast(engine=...)``: ``"auto"``
takes this path whenever faults, recovery and tracing are off, and the
49 golden sha256 fixtures plus the randomized differential harness
(``tests/test_fastpath_differential.py``) pin the bit-identity claim
for the kernel, the no-JIT fallback, and warm plan-cache replays alike.
See ``docs/FASTPATH.md`` for the full contract.
"""

from repro.errors import UnsupportedFastPathError
from repro.fastpath.evaluator import (
    FastRunResult,
    PlanBinding,
    bind_plan,
    evaluate_plan,
    evaluate_plan_many,
    evaluate_schedule,
)
from repro.fastpath.kernel import kernel_mode, kernel_status
from repro.fastpath.lowering import FastPlan, lower_schedule
from repro.fastpath.plancache import FastOutcome, evaluate_problem, plan_cache

__all__ = [
    "FastOutcome",
    "FastPlan",
    "FastRunResult",
    "PlanBinding",
    "UnsupportedFastPathError",
    "bind_plan",
    "evaluate_plan",
    "evaluate_plan_many",
    "evaluate_problem",
    "evaluate_schedule",
    "kernel_mode",
    "kernel_status",
    "lower_schedule",
    "plan_cache",
]
