"""The s-to-p broadcasting problem statement.

A problem is a machine, the set of ``s`` source ranks, and the size of
each source's message.  Every algorithm builds its schedule from a
problem; the paper's standing assumption — "every processor knows the
position of the source processors and the size of the messages when
s-to-p broadcasting starts" (§1) — is what licenses schedule
construction without any pre-communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.machines.machine import Machine

__all__ = ["BroadcastProblem"]


@dataclass(frozen=True)
class BroadcastProblem:
    """An instance of s-to-p broadcasting.

    Parameters
    ----------
    machine:
        The simulated machine.
    sources:
        The ranks initiating a broadcast (deduplicated, sorted).
    message_size:
        Uniform message size ``L`` in bytes.  For the non-uniform case
        (§5 reports it does not change the findings) pass ``sizes``.
    sizes:
        Optional per-source byte sizes; overrides ``message_size`` for
        the ranks it mentions.
    """

    machine: Machine
    sources: Tuple[int, ...]
    message_size: int = 1024
    sizes: Optional[Mapping[int, int]] = None
    _size_table: Dict[int, int] = field(
        init=False, repr=False, hash=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        p = self.machine.p
        unique = tuple(sorted(set(self.sources)))
        if not unique:
            raise ConfigurationError("need at least one source processor")
        if unique != tuple(self.sources):
            object.__setattr__(self, "sources", unique)
        if unique[0] < 0 or unique[-1] >= p:
            raise ConfigurationError(
                f"sources must lie in [0, {p}), got range "
                f"[{unique[0]}, {unique[-1]}]"
            )
        if self.message_size <= 0:
            raise ConfigurationError(
                f"message size must be positive, got {self.message_size}"
            )
        table = {rank: self.message_size for rank in unique}
        if self.sizes is not None:
            for rank, size in self.sizes.items():
                if rank not in table:
                    raise ConfigurationError(
                        f"size given for non-source rank {rank}"
                    )
                if size <= 0:
                    raise ConfigurationError(
                        f"size for source {rank} must be positive, got {size}"
                    )
                table[rank] = int(size)
        object.__setattr__(self, "_size_table", table)

    # -- basic quantities ------------------------------------------------
    @property
    def p(self) -> int:
        """Number of processors."""
        return self.machine.p

    @property
    def s(self) -> int:
        """Number of source processors."""
        return len(self.sources)

    @property
    def source_set(self) -> frozenset:
        """Sources as a frozenset (handy for membership tests)."""
        return frozenset(self.sources)

    @property
    def total_bytes(self) -> int:
        """Sum of all source message sizes (the paper's "total message size")."""
        return sum(self._size_table.values())

    def is_source(self, rank: int) -> bool:
        """Whether ``rank`` initiates a broadcast."""
        return rank in self._size_table

    def size_of(self, source: int) -> int:
        """Message size of one source rank."""
        try:
            return self._size_table[source]
        except KeyError:
            raise ConfigurationError(f"rank {source} is not a source") from None

    def nbytes(self, msgset: AbstractSet[int] | Iterable[int]) -> int:
        """Total byte size of a combined message holding ``msgset``."""
        return sum(self._size_table[m] for m in msgset)

    def initial_holdings(self) -> Tuple[frozenset, ...]:
        """Per-rank initial message sets: ``{rank}`` for sources, else empty."""
        empty = frozenset()
        return tuple(
            frozenset((rank,)) if rank in self._size_table else empty
            for rank in range(self.p)
        )

    def replace_sources(
        self, sources: Iterable[int], carry_sizes: bool = False
    ) -> "BroadcastProblem":
        """A copy of this problem with a different source set.

        With ``carry_sizes`` the per-source sizes are carried over in
        sorted-rank order (used by repositioning: message *i* moves to
        target slot *i*); otherwise all new sources get the uniform
        ``message_size``.
        """
        new_sources = tuple(sorted(set(sources)))
        sizes: Optional[Dict[int, int]] = None
        if carry_sizes:
            if len(new_sources) != self.s:
                raise ConfigurationError(
                    "carry_sizes requires equally many sources "
                    f"({len(new_sources)} != {self.s})"
                )
            old_sizes = [self._size_table[r] for r in self.sources]
            sizes = dict(zip(new_sources, old_sizes))
        return BroadcastProblem(
            machine=self.machine,
            sources=new_sources,
            message_size=self.message_size,
            sizes=sizes,
        )

    def __repr__(self) -> str:
        return (
            f"<BroadcastProblem s={self.s} p={self.p} "
            f"L={self.message_size} on {self.machine.params.name}>"
        )
