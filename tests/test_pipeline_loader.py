"""Config loading: strictness, error naming, and round-trip stability."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.loader import (
    DEFAULT_CONFIG_DIR,
    load_config,
    load_config_dir,
    load_config_text,
)

MINIMAL = """
[experiment]
id = "demo"
title = "Demo"
description = "a two-point sweep"
kind = "declarative"

[[series]]
kind = "sweep"
title = "demo sweep"
x_label = "s"
machine = "paragon:4x4"
distribution = "E"
algorithms = ["Br_Lin"]
s_values = {{ full = [4, 8], quick = [4] }}
message_size = 256
{extra}
"""


def _minimal(extra: str = "") -> str:
    return MINIMAL.format(extra=extra)


class TestErrorNaming:
    """Rejections at load time name the offending file and key."""

    def test_unknown_experiment_key_names_key_and_file(self):
        text = _minimal().replace(
            'kind = "declarative"', 'kind = "declarative"\nfrobnicate = 1'
        )
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text, path="configs/xx-demo.toml")
        assert "'frobnicate'" in str(err.value)
        assert "configs/xx-demo.toml" in str(err.value)

    def test_missing_required_key_is_named(self):
        text = _minimal().replace('x_label = "s"\n', "")
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text)
        assert "'x_label'" in str(err.value)

    def test_unknown_series_kind_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            load_config_text(_minimal().replace('kind = "sweep"', 'kind = "mystery"'))
        assert "mystery" in str(err.value)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            load_config_text(
                _minimal().replace('algorithms = ["Br_Lin"]',
                                   'algorithms = ["Br_Quantum"]')
            )
        assert "Br_Quantum" in str(err.value)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            load_config_text(
                _minimal().replace('distribution = "E"', 'distribution = "Z"')
            )
        assert "'Z'" in str(err.value)

    def test_malformed_machine_spec_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            load_config_text(
                _minimal().replace('machine = "paragon:4x4"',
                                   'machine = "cray:banana"')
            )
        assert "cray:banana" in str(err.value)

    def test_unknown_assertion_type_rejected_at_load(self):
        """The satellite case: a bad check type never reaches a sweep."""
        text = _minimal(
            extra="""
[[checks]]
type = "assert_monotone"
description = "nope"
"""
        )
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text, path="configs/xx-demo.toml")
        message = str(err.value)
        assert "assert_monotone" in message
        assert "configs/xx-demo.toml" in message

    def test_check_expression_compiled_at_load(self):
        """Disallowed syntax in an expr fails at load, not mid-run."""
        text = _minimal(
            extra="""
[[checks]]
type = "expr"
description = "attribute escape"
expr = "().__class__"
"""
        )
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text)
        assert "expr" in str(err.value)

    def test_check_series_index_out_of_range(self):
        text = _minimal(
            extra="""
[[checks]]
type = "expr"
description = "wrong series"
series = 3
expr = "v('Br_Lin', 4) > 0"
"""
        )
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text)
        assert "series" in str(err.value)

    def test_builder_config_rejects_series(self):
        text = """
[experiment]
id = "demo"
title = "Demo"
description = "builder"
kind = "builder"
builder = "repro.bench.figures:fig01"
expected_checks = 3

[[series]]
kind = "sweep"
title = "t"
x_label = "s"
machine = "paragon:4x4"
distribution = "E"
algorithms = ["Br_Lin"]
s_values = [4]
message_size = 256
"""
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text)
        assert "builder" in str(err.value)

    def test_unimportable_builder_rejected(self):
        text = """
[experiment]
id = "demo"
title = "Demo"
description = "builder"
kind = "builder"
builder = "repro.bench.figures:no_such_figure"
expected_checks = 1
"""
        with pytest.raises(ConfigurationError) as err:
            load_config_text(text)
        assert "no_such_figure" in str(err.value)

    def test_per_x_list_length_mismatch_rejected(self):
        text = _minimal().replace(
            "message_size = 256",
            "message_size = [256, 512]",
        )
        with pytest.raises(ConfigurationError):
            load_config_text(text)

    def test_duplicate_ids_rejected(self, tmp_path):
        (tmp_path / "01-a.toml").write_text(_minimal(), encoding="utf-8")
        (tmp_path / "02-b.toml").write_text(_minimal(), encoding="utf-8")
        with pytest.raises(ConfigurationError) as err:
            load_config_dir(tmp_path)
        assert "duplicate" in str(err.value)
        assert "02-b.toml" in str(err.value)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_config_dir(tmp_path / "nope")


class TestRoundTrip:
    """TOML → SweepSpec expansion is bit-stable across loads."""

    def test_text_round_trip_is_stable(self):
        first = load_config_text(_minimal())
        second = load_config_text(_minimal())
        assert first == second
        assert first.sweep_specs() == second.sweep_specs()
        assert first.sweep_specs(quick=True) == second.sweep_specs(quick=True)

    def test_file_round_trip_matches_committed_configs(self):
        """Re-reading every committed config is a fixed point."""
        for config in load_config_dir().values():
            assert load_config(config.path) == config

    def test_sweep_spec_points_are_deterministic(self):
        config = load_config_text(_minimal())
        spec_a = config.sweep_specs()[0]
        spec_b = config.sweep_specs()[0]
        keys_a = [point.key() for point in spec_a.points()]
        keys_b = [point.key() for point in spec_b.points()]
        assert keys_a == keys_b
        assert len(keys_a) == spec_a.num_points

    def test_quick_axis_falls_back_to_full(self):
        config = load_config_text(_minimal())
        assert config.sweep_specs(quick=True)[0].s_values == (4,)
        assert config.sweep_specs(quick=False)[0].s_values == (4, 8)


class TestCommittedConfigs:
    """The shipped configs/ directory is complete and well-formed."""

    def test_counts_match_the_experiments_summary(self):
        configs = list(load_config_dir().values())
        assert len(configs) == 25
        assert sum(c.num_checks for c in configs) == 74

    def test_every_config_has_doc_block(self):
        for config in load_config_dir().values():
            assert config.doc is not None, config.id
            assert config.doc.verdict in ("reproduced", "partial")

    def test_groups_cover_the_paper(self):
        configs = list(load_config_dir().values())
        by_group = {}
        for config in configs:
            by_group.setdefault(config.group, []).append(config.id)
        assert len(by_group["figures"]) == 13
        assert len(by_group["text"]) == 3
        assert len(by_group["ablations"]) == 5
        assert len(by_group["extensions"]) == 3
        assert len(by_group["robustness"]) == 1

    def test_default_config_dir_is_the_repo_configs(self):
        assert DEFAULT_CONFIG_DIR.name == "configs"
        assert (DEFAULT_CONFIG_DIR / "03-fig3.toml").is_file()
