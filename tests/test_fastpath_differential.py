"""Differential tests: the fast path bisimulates the event engine.

The fast path (:mod:`repro.fastpath`) promises *bit-identical* results
to the generator event engine — same virtual times, same metric
counters, same link utilization, down to the last float bit.  These
tests exercise that promise three ways:

* a seeded randomized grid over (machine, algorithm, distribution,
  source count, message length, seed, contention) comparing the two
  engines' canonical JSON byte-for-byte — including exception parity
  for combinations an algorithm rejects;
* sweep-level agreement: serial and ``jobs=4`` executors forced to
  ``event``, ``fast`` and ``auto`` all produce the same results;
* cache-key neutrality: entries written by an event-engine sweep are
  served verbatim to a fast-engine sweep (and vice versa).
"""

from __future__ import annotations

import json
import random

import pytest

import repro
from repro.core.problem import BroadcastProblem
from repro.core.runner import run_broadcast
from repro.errors import ReproError
from repro.machines import machine_from_spec
from repro.sweep import ResultCache, SweepExecutor, SweepSpec

#: Pools the seeded sampler draws from.  Machines cover both wormhole
#: meshes and store-and-forward tori plus the hypercube extension;
#: algorithms include mesh-only families (exception parity on t3d).
MACHINES = ("paragon:4x4", "paragon:8x8", "t3d:16", "t3d:32", "hypercube:16")
DISTRIBUTIONS = ("E", "R", "Sq", "Dr", "C", "Rnd", "B")
ALGORITHMS = (
    "Br_Lin",
    "Br_Ring",
    "Br_xy_source",
    "Br_xy_dim",
    "2-Step",
    "PersAlltoAll",
    "MPI_AllGather",
    "MPI_Alltoall",
    "Naive_Independent",
    "Part_Lin",
    "Repos_Lin",
)


def _blob(result) -> str:
    """Canonical JSON rendering — the byte-identity yardstick."""
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


def _sample_points(n: int = 28, seed: int = 20260807):
    """Deterministic random grid sample; resamples invalid placements."""
    rng = random.Random(seed)
    points = []
    attempts = 0
    while len(points) < n and attempts < 40 * n:
        attempts += 1
        spec = rng.choice(MACHINES)
        machine = machine_from_spec(spec)
        dist = rng.choice(DISTRIBUTIONS)
        s = rng.randint(1, machine.p)
        try:
            sources = tuple(repro.get_distribution(dist).generate(machine, s))
        except ReproError:
            continue  # distribution rejects this s on this machine
        points.append(
            (
                spec,
                dist,
                rng.choice(ALGORITHMS),
                sources,
                rng.choice((64, 512, 1024, 4096)),
                rng.randint(0, 3),
                rng.random() < 0.25,  # ~1 in 4 points: contention off
            )
        )
    assert len(points) == n, "sampler failed to fill the grid"
    return points


_POINTS = _sample_points()
_IDS = [
    f"{spec}-{alg}-{dist}-s{len(sources)}-L{L}-seed{seed}"
    + ("-nocont" if not contention else "")
    for spec, dist, alg, sources, L, seed, contention in _POINTS
]


@pytest.mark.parametrize(
    "spec,dist,alg,sources,L,seed,contention", _POINTS, ids=_IDS
)
def test_fast_engine_matches_event_engine(
    spec, dist, alg, sources, L, seed, contention
):
    problem = BroadcastProblem(
        machine=machine_from_spec(spec), sources=sources, message_size=L
    )
    try:
        event = run_broadcast(
            problem, alg, seed=seed, contention=contention, engine="event"
        )
    except ReproError as exc:
        # Exception parity: whatever the event engine rejects, the fast
        # path must reject with the same exception class.
        with pytest.raises(type(exc)):
            run_broadcast(
                problem, alg, seed=seed, contention=contention, engine="fast"
            )
        return
    fast = run_broadcast(
        problem, alg, seed=seed, contention=contention, engine="fast"
    )
    assert _blob(fast) == _blob(event)


def test_warm_plan_cache_replay_matches_event_engine():
    """Cold lowering and warm cache-hit replays are equally bit-identical.

    The first runnable grid points each execute three times: event
    engine, fast with a cleared plan cache (a miss that lowers the
    schedule), and fast again (a hit replaying the cached plan).  All
    three must serialize byte-for-byte the same — the plan cache is an
    amortization, never an approximation.
    """
    from repro.fastpath import plancache

    plancache.clear()
    checked = 0
    for spec, dist, alg, sources, L, seed, contention in _POINTS:
        if checked >= 8:
            break
        problem = BroadcastProblem(
            machine=machine_from_spec(spec), sources=sources, message_size=L
        )
        try:
            event = run_broadcast(
                problem, alg, seed=seed, contention=contention, engine="event"
            )
        except ReproError:
            continue  # exception parity is covered by the grid test
        cold = run_broadcast(
            problem, alg, seed=seed, contention=contention, engine="fast"
        )
        warm = run_broadcast(
            problem, alg, seed=seed, contention=contention, engine="fast"
        )
        assert warm.debug["plan_cache"] == "hit"
        assert _blob(cold) == _blob(event)
        assert _blob(warm) == _blob(event)
        checked += 1
    assert checked == 8, "sampler starved the warm-replay check"


def test_fast_engine_matches_event_on_nonuniform_sizes():
    """Per-source byte tables flow through the fast path unchanged."""
    machine = machine_from_spec("paragon:4x4")
    sources = (0, 3, 7, 12)
    problem = BroadcastProblem(
        machine=machine,
        sources=sources,
        message_size=1024,
        sizes={0: 256, 3: 4096, 7: 64, 12: 1024},
    )
    event = run_broadcast(problem, "PersAlltoAll", seed=1, engine="event")
    fast = run_broadcast(problem, "PersAlltoAll", seed=1, engine="fast")
    assert _blob(fast) == _blob(event)


#: Sweep-level grid: both machine families, four algorithms, two seeds.
SWEEP_GRID = SweepSpec(
    machines=("paragon:4x4", "t3d:16"),
    distributions=("E", "R"),
    s_values=(4,),
    message_sizes=(256,),
    algorithms=("Br_Lin", "2-Step", "PersAlltoAll", "MPI_AllGather"),
    seeds=(0, 1),
)


@pytest.fixture(scope="module")
def sweep_points():
    return SWEEP_GRID.points()


@pytest.fixture(scope="module")
def event_serial_blobs(sweep_points):
    executor = SweepExecutor(jobs=1, engine="event")
    return [_blob(r) for r in executor.run(sweep_points)]


@pytest.mark.parametrize("engine", ["auto", "fast"])
@pytest.mark.parametrize("jobs", [1, 4])
def test_sweep_engine_and_jobs_agree(
    sweep_points, event_serial_blobs, engine, jobs
):
    """Serial/parallel x engine: every combination is byte-identical."""
    executor = SweepExecutor(jobs=jobs, engine=engine)
    got = [_blob(r) for r in executor.run(sweep_points)]
    assert got == event_serial_blobs
    assert executor.last_report.computed == len(sweep_points)


def test_cache_entries_shared_across_engines(
    sweep_points, event_serial_blobs, tmp_path
):
    """Engine choice is cache-key neutral: entries are interchangeable."""
    writer = SweepExecutor(jobs=1, cache=ResultCache(tmp_path), engine="event")
    assert [_blob(r) for r in writer.run(sweep_points)] == event_serial_blobs
    assert writer.last_report.computed == len(sweep_points)

    reader = SweepExecutor(jobs=1, cache=ResultCache(tmp_path), engine="fast")
    assert [_blob(r) for r in reader.run(sweep_points)] == event_serial_blobs
    assert reader.last_report.cached == len(sweep_points)
    assert reader.last_report.computed == 0
