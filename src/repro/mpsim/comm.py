"""Rank-addressed communication over the simulated fabric.

:class:`World` owns the shared state of one machine run (engine,
fabric, inboxes, metrics); :class:`Comm` is a rank's *view* of a group
of ranks — the world group, a mesh row/column, or a machine half.
Sub-communicators are plain rank translations; creating one costs no
simulated time (mirroring the paper's assumption that every processor
already knows the source positions, so group membership is common
knowledge).

Timing of one point-to-point message::

    sender:   [t_send_overhead]───fabric reservation───▶
    network:                   [link wait][hops·t_hop + nbytes·t_byte]
    receiver:                       ...blocked in recv...[t_recv_overhead
                                                          + nbytes·t_mem_byte]

The receive-side per-byte cost is the memory copy out of the system
buffer; for the broadcasting algorithms it doubles as the paper's
message-*combining* cost (merging two sorted message sets is one pass
over the bytes).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    CommError,
    PeerFailedError,
    RecvTimeoutError,
    SendTimeoutError,
)
from repro.metrics.counters import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.machines.params import MachineParams
from repro.mpsim.envelope import Envelope
from repro.mpsim.requests import Request
from repro.network.fabric import Fabric
from repro.network.mapping import RankMapping
from repro.simulator.engine import Engine
from repro.simulator.events import AnyOf
from repro.simulator.resources import Store

__all__ = ["ANY_SOURCE", "ANY_TAG", "World", "Comm"]

#: Wildcard receive source (matches any sender).
ANY_SOURCE = -1
#: Wildcard receive tag (matches any tag).
ANY_TAG = -1


class World:
    """Shared communication state for one simulation run."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        params: "MachineParams",
        mapping: RankMapping,
        metrics: Optional[MetricsCollector] = None,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.params = params
        self.mapping = mapping
        #: Fault state shared with the fabric; ``None`` = perfect machine.
        self.injector = injector
        self.size = mapping.size
        self.inboxes: List[Store] = [Store(engine) for _ in range(self.size)]
        self.metrics = metrics if metrics is not None else MetricsCollector(self.size)
        #: Interned group tuple of the full world, shared by every
        #: world communicator view (one allocation per run, not per rank).
        self.world_group: Tuple[int, ...] = tuple(range(self.size))
        # world-rank -> group-rank dicts, interned per group tuple so
        # every communicator view over the same group shares one dict.
        self._group_indices: Dict[Tuple[int, ...], Dict[int, int]] = {}

    def comm(self, rank: int) -> "Comm":
        """The world communicator as seen by ``rank``."""
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} outside world of size {self.size}")
        return Comm(self, self.world_group, rank, _validated=True)

    def group_index(self, group: Tuple[int, ...]) -> Dict[int, int]:
        """The interned ``world rank -> group rank`` dict for ``group``."""
        index = self._group_indices.get(group)
        if index is None:
            index = {w: g for g, w in enumerate(group)}
            self._group_indices[group] = index
        return index

    def deliver(self, envelope: Envelope) -> None:
        """Deposit ``envelope`` in its destination inbox (kernel callback)."""
        self.inboxes[envelope.dest].put(envelope)


class Comm:
    """A rank's communicator over a group of world ranks.

    Parameters
    ----------
    world:
        The shared run state.
    group:
        Tuple of *world* ranks in this communicator, in group order.
    rank:
        This processor's index *within the group*.
    """

    def __init__(
        self,
        world: World,
        group: Tuple[int, ...],
        rank: int,
        *,
        _validated: bool = False,
    ) -> None:
        if not _validated:
            # Groups derived from an already-validated communicator (mode
            # views, world comms, sub-comms) skip this O(group) pass.
            if len(set(group)) != len(group):
                raise CommError(f"communicator group has duplicates: {group}")
            if not 0 <= rank < len(group):
                raise CommError(
                    f"rank {rank} outside group of size {len(group)}"
                )
            for g in group:
                if not 0 <= g < world.size:
                    raise CommError(
                        f"world rank {g} out of range [0, {world.size})"
                    )
        self.world = world
        self.group = group
        self.rank = rank
        self.size = len(group)
        #: Overhead mode applied to every operation issued through this
        #: communicator (library collectives flip ``collective``).
        self.collective = False
        self.mpi = False
        # Current logical iteration, shared by reference across every
        # communicator view of this rank (sub-comms, mode copies) so
        # metrics bucket correctly no matter which view issues the op.
        self._iteration_cell = [0]
        # Interned world->group rank index (shared across views of the
        # same group); doubles as the O(1) membership test in recv.
        self._index = world.group_index(group)
        # (collective, mpi) -> cached mode-variant view of this comm.
        self._mode_cache: Dict[Tuple[bool, bool], "Comm"] = {}
        # World-group views translate ranks identically, so received
        # envelopes need no localization copy.
        self._identity_group = group == world.world_group
        # Per-message software overheads memoized for the current mode
        # flags (invalidated by comparison, so late flag flips are safe).
        self._cost_key: Optional[Tuple[bool, bool]] = None
        self._send_ovh = 0.0
        self._recv_ovh = 0.0

    # -- iteration bookkeeping ---------------------------------------------
    @property
    def iteration(self) -> int:
        """Logical iteration used to bucket this rank's metrics."""
        return self._iteration_cell[0]

    @iteration.setter
    def iteration(self, index: int) -> None:
        self._iteration_cell[0] = index

    # -- group management ------------------------------------------------
    @property
    def world_rank(self) -> int:
        """This processor's rank in the world communicator."""
        return self.group[self.rank]

    def translate(self, rank: int) -> int:
        """Group rank → world rank."""
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} outside group of size {self.size}")
        return self.group[rank]

    def sub(self, ranks: Sequence[int]) -> Optional["Comm"]:
        """Sub-communicator over the given *group* ranks.

        Returns ``None`` if the calling rank is not in ``ranks`` —
        mirroring ``MPI_Comm_split`` returning ``MPI_COMM_NULL``.
        """
        world_ranks = tuple(self.translate(r) for r in ranks)
        if self.rank not in ranks:
            return None
        # translate() already range-checked every rank against this
        # (validated) group, so only duplicates remain to be rejected.
        if len(set(world_ranks)) != len(world_ranks):
            raise CommError(f"communicator group has duplicates: {world_ranks}")
        sub = Comm(
            self.world,
            world_ranks,
            list(ranks).index(self.rank),
            _validated=True,
        )
        sub.collective = self.collective
        sub.mpi = self.mpi
        sub._iteration_cell = self._iteration_cell
        return sub

    def with_mode(
        self, *, collective: Optional[bool] = None, mpi: Optional[bool] = None
    ) -> "Comm":
        """A same-group communicator view with the given overhead modes.

        Views are cheap and cached: asking for this communicator's own
        mode returns ``self``, and each distinct ``(collective, mpi)``
        combination is built once per communicator.  Cached views share
        the group, the rank index and the iteration cell, so they are
        interchangeable with freshly built copies.
        """
        want_collective = self.collective if collective is None else collective
        want_mpi = self.mpi if mpi is None else mpi
        if want_collective == self.collective and want_mpi == self.mpi:
            return self
        key = (want_collective, want_mpi)
        comm = self._mode_cache.get(key)
        if comm is None:
            comm = Comm(self.world, self.group, self.rank, _validated=True)
            comm.collective = want_collective
            comm.mpi = want_mpi
            comm._iteration_cell = self._iteration_cell
            self._mode_cache[key] = comm
        return comm

    def _mode_costs(self) -> Tuple[float, float]:
        """``(send_overhead, recv_overhead)`` for the current mode flags."""
        key = (self.collective, self.mpi)
        if key != self._cost_key:
            params = self.world.params
            self._send_ovh = params.send_overhead(
                collective=key[0], mpi=key[1]
            )
            self._recv_ovh = params.recv_overhead(
                collective=key[0], mpi=key[1]
            )
            self._cost_key = key
        return self._send_ovh, self._recv_ovh

    # -- point-to-point ---------------------------------------------------
    def isend(
        self, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> Generator[Any, Any, Request]:
        """Non-blocking send; charges sender overhead, then returns a Request.

        Usage: ``request = yield from comm.isend(...)``.
        """
        if tag < 0:
            raise CommError(f"send tag must be >= 0, got {tag}")
        world = self.world
        engine = world.engine
        params = world.params
        src_world = self.group[self.rank]
        dst_world = self.translate(dest)
        overhead = self._mode_costs()[0]
        if overhead > 0.0:
            yield engine.timeout(overhead)
        now = engine.now
        mapping = world.mapping
        injector = world.injector
        dst_node = mapping.node_of(dst_world)
        if injector is not None and injector.node_dead(dst_node, now):
            raise PeerFailedError(
                f"send from rank {src_world} to rank {dst_world} failed: "
                f"node {dst_node} is dead at t={now:.3f}us"
            )
        stats = world.fabric.transfer(
            mapping.node_of(src_world), dst_node, nbytes, now
        )
        if stats.lost:
            # Every route to the destination crosses a dead link: the
            # message vanishes in the fabric.  The returned request never
            # completes — blocking on it hangs exactly like the real
            # machine, and the deadlock diagnostic names the faults.
            world.metrics.record_send(
                src_world,
                nbytes,
                0.0,
                iteration=self._iteration_cell[0],
                when=now,
            )
            if engine.tracer is not None:
                engine.trace(
                    "send_lost",
                    src=src_world,
                    dst=dst_world,
                    tag=tag,
                    nbytes=nbytes,
                )
            return Request(engine.event(), kind="send")
        envelope = Envelope(
            source=src_world,
            dest=dst_world,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            send_time=now,
            arrival_time=stats.finish_time,
        )
        world.metrics.record_send(
            src_world,
            nbytes,
            stats.start_time - now,
            iteration=self._iteration_cell[0],
            when=now,
        )
        if engine.tracer is not None:
            engine.trace(
                "send",
                src=src_world,
                dst=dst_world,
                tag=tag,
                nbytes=nbytes,
                start=stats.start_time,
                finish=stats.finish_time,
            )
        # One fused event per message: delivery (inbox deposit) runs as
        # the completion event's first callback, so the calendar carries
        # a single entry where the seed code scheduled two (call_at +
        # completion) for the same instant.  Callback order preserves the
        # seed semantics: deliver first, then resume any send-waiters.
        completion = engine.event()
        completion.add_callback(
            lambda _ev, _deliver=world.deliver, _env=envelope: _deliver(_env)
        )
        completion.succeed(envelope, delay=stats.finish_time - now)
        return Request(completion, kind="send")

    def send(
        self,
        dest: int,
        payload: Any,
        nbytes: int,
        tag: int = 0,
        *,
        timeout_us: Optional[float] = None,
        max_retries: int = 0,
        backoff_factor: float = 2.0,
    ) -> Generator[Any, Any, Envelope]:
        """Blocking send: completes when the last byte reaches ``dest``.

        Without ``timeout_us`` this is the classic blocking send, which
        under fault injection can hang forever on a dead path.  With
        ``timeout_us`` the send races its completion against a timer:
        on expiry the message is re-issued up to ``max_retries`` times,
        each attempt's budget growing by ``backoff_factor`` (the sender
        stays blocked through the budget, which *is* the backoff), and
        :class:`~repro.errors.SendTimeoutError` is raised once the
        attempts are exhausted.  Retries are at-least-once: a late
        original may still arrive alongside the retry's copy, so
        receivers of retried traffic must tolerate duplicates.
        """
        if timeout_us is None:
            request = yield from self.isend(dest, payload, nbytes, tag)
            envelope = yield from request.wait()
            return envelope
        if timeout_us <= 0.0:
            raise CommError(f"send timeout must be positive, got {timeout_us}")
        if max_retries < 0:
            raise CommError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_factor < 1.0:
            raise CommError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        engine = self.world.engine
        budget = float(timeout_us)
        attempts = max_retries + 1
        for attempt in range(attempts):
            request = yield from self.isend(dest, payload, nbytes, tag)
            index, value = yield AnyOf(
                engine, (request.event, engine.timeout(budget))
            )
            if index == 0:
                return value
            if engine.tracer is not None:
                engine.trace(
                    "send_timeout",
                    src=self.group[self.rank],
                    dst=self.translate(dest),
                    tag=tag,
                    attempt=attempt,
                    budget_us=budget,
                )
            # Grow the budget only when another attempt will actually be
            # made: ``max_retries=0`` means exactly one attempt, and the
            # error below reports the budget the final attempt really had.
            if attempt + 1 < attempts:
                budget *= backoff_factor
        raise SendTimeoutError(
            f"send from rank {self.group[self.rank]} to rank "
            f"{self.translate(dest)} timed out after {attempts} "
            f"attempt(s) (final budget {budget:g}us) "
            f"at t={engine.now:.3f}us"
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout_us: Optional[float] = None,
    ) -> Generator[Any, Any, Envelope]:
        """Blocking receive matching ``(source, tag)`` in group ranks.

        Blocks until a matching envelope arrives, then charges the
        receive overhead plus the per-byte copy cost, and returns the
        envelope (its ``source`` converted to a *group* rank).

        With ``timeout_us`` the receive races a timer:
        :class:`~repro.errors.RecvTimeoutError` is raised on expiry and
        the parked inbox request is withdrawn, so a message arriving
        later is buffered for future receives instead of being lost to
        the abandoned one.
        """
        world = self.world
        engine = world.engine
        params = world.params
        me_world = self.group[self.rank]
        src_world = source if source == ANY_SOURCE else self.translate(source)
        posted = engine.now
        # Wildcard receives must only match senders inside this group;
        # the interned world->group index doubles as the O(1) member test.
        group_index = None if source != ANY_SOURCE else self._index

        def matches(env: Envelope) -> bool:
            if not env.matches(src_world, tag):
                return False
            return group_index is None or env.source in group_index

        inbox = world.inboxes[me_world]
        if timeout_us is None:
            envelope: Envelope = yield inbox.get(matches)
        else:
            if timeout_us <= 0.0:
                raise CommError(
                    f"recv timeout must be positive, got {timeout_us}"
                )
            get_event = inbox.get(matches)
            index, value = yield AnyOf(
                engine, (get_event, engine.timeout(timeout_us))
            )
            if index != 0 and get_event.triggered:
                # The timer and the matching envelope landed in the same
                # instant and the timer processed first.  The item is
                # already claimed by the getter — take it rather than
                # losing a delivered message to the expired receive.
                index, value = 0, get_event.value
            if index != 0:
                inbox.cancel(get_event)
                if engine.tracer is not None:
                    engine.trace(
                        "recv_timeout",
                        rank=me_world,
                        src=src_world,
                        tag=tag,
                        budget_us=timeout_us,
                    )
                raise RecvTimeoutError(
                    f"recv at rank {me_world} from "
                    f"{'any source' if source == ANY_SOURCE else f'rank {src_world}'} "
                    f"timed out after {timeout_us:g}us at t={engine.now:.3f}us"
                )
            envelope = value
        wait_time = engine.now - posted
        copy_time = params.copy_cost(envelope.nbytes, collective=self.collective)
        overhead = self._mode_costs()[1]
        total = overhead + copy_time
        if total > 0.0:
            yield engine.timeout(total)
        world.metrics.record_recv(
            me_world,
            envelope.nbytes,
            wait_time,
            copy_time,
            iteration=self._iteration_cell[0],
            when=engine.now,
        )
        if engine.tracer is not None:
            engine.trace(
                "recv",
                rank=me_world,
                src=envelope.source,
                tag=envelope.tag,
                nbytes=envelope.nbytes,
                waited=wait_time,
            )
        return self._localized(envelope)

    def _localized(self, envelope: Envelope) -> Envelope:
        """Envelope with ``source``/``dest`` translated to group ranks."""
        if self._identity_group:
            # World-group view: world ranks ARE group ranks, and the
            # envelope's dest is already this rank — reuse it as-is.
            return envelope
        src_local = self._index.get(envelope.source)
        if src_local is None:
            raise CommError(
                f"received from rank {envelope.source} outside group"
            )
        return Envelope(
            source=src_local,
            dest=self.rank,
            tag=envelope.tag,
            payload=envelope.payload,
            nbytes=envelope.nbytes,
            send_time=envelope.send_time,
            arrival_time=envelope.arrival_time,
        )

    # -- local work --------------------------------------------------------
    def compute(self, duration: float) -> Generator[Any, Any, None]:
        """Occupy the processor for ``duration`` microseconds of local work."""
        if duration < 0:
            raise CommError(f"negative compute duration {duration}")
        if duration > 0.0:
            yield self.world.engine.timeout(duration)

    @property
    def now(self) -> float:
        """Current simulated time (microseconds)."""
        return self.world.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm rank {self.rank}/{self.size} (world {self.world_rank})>"
