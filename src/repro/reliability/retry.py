"""Error classification, deterministic backoff, reliability counters.

Three error classes drive how the sweep's workers and coordinator react
to a failure (:func:`classify_error`):

* **transient** — worth retrying in place: the environmental ``OSError``
  family a loaded shared filesystem throws off (``ENOSPC``, ``EIO``,
  ``EAGAIN``, ``ESTALE``, ...) plus ``TimeoutError``.  Retried with
  bounded, deterministically-jittered exponential backoff
  (:func:`with_backoff`).
* **poison** — deterministic evaluation failures
  (:class:`~repro.errors.ReproError`: verification errors,
  algorithm/machine mismatches).  Retrying re-fails identically under
  every worker, so these are *recorded* in the unit's done marker and
  the unit finishes instead of ping-ponging between stealers.
* **fatal** — everything else (permissions, programming errors):
  propagate immediately; retrying would loop on a bug.

The backoff jitter is *deterministic*: attempt ``i`` of a call keyed
``key`` sleeps ``min(max_s, base_s * 2**i) * u`` where ``u`` is drawn
from ``random.Random(f"{key}#{i}")`` in ``[0.5, 1.0)`` — replayable
from logs, no cross-worker thundering herd, and no dependence on global
RNG state (the same hash-randomisation-independent string-seeding the
chaos harness uses).

:class:`ReliabilityCounters` accumulates what the layer observed —
retries, quarantines, steals, fencing rejections, corrupt queue
records — and folds into
:class:`~repro.metrics.progress.SweepReport` so a sweep's roll-up says
not just how fast it ran but what it survived.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Optional, TypeVar

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "DEFAULT_RETRY",
    "ReliabilityCounters",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "classify_error",
    "with_backoff",
]

T = TypeVar("T")

#: ``OSError`` errnos worth retrying: resource pressure and flaky
#: shared-filesystem conditions that can clear on their own.  Notably
#: *not* here: EACCES/EPERM/EROFS (misconfiguration — retry loops
#: forever) and ENOENT (a miss, not an error).
TRANSIENT_ERRNOS = frozenset(
    getattr(errno, name)
    for name in (
        "EAGAIN",
        "EBUSY",
        "EDQUOT",
        "EINTR",
        "EIO",
        "EMFILE",
        "ENFILE",
        "ENOSPC",
        "ESTALE",
        "ETIMEDOUT",
    )
    if hasattr(errno, name)
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` | ``"poison"`` | ``"fatal"`` for one exception.

    The order matters: :class:`~repro.errors.ReproError` is checked
    first (a deterministic evaluation failure wrapped in a library type
    is poison even if it chains an ``OSError``), then the transient
    ``OSError`` table, then everything else is fatal.
    """
    if isinstance(exc, ReproError):
        return "poison"
    if isinstance(exc, TimeoutError):
        return "transient"
    if isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS:
        return "transient"
    return "fatal"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds of one backoff loop: attempts and sleep envelope."""

    #: Total tries including the first (so ``attempts=1`` never sleeps).
    attempts: int = 4
    #: First retry's nominal delay, doubled per further attempt.
    base_s: float = 0.02
    #: Ceiling on any single delay.
    max_s: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"RetryPolicy.attempts must be >= 1, got {self.attempts}"
            )
        if self.base_s < 0.0 or self.max_s < 0.0:
            raise ConfigurationError(
                "RetryPolicy delays must be >= 0, got "
                f"base_s={self.base_s}, max_s={self.max_s}"
            )

    def delay_s(self, key: str, attempt: int) -> float:
        """Deterministically jittered delay before retry ``attempt``.

        ``attempt`` counts failed tries so far (1 = first retry).  The
        jitter multiplier lives in ``[0.5, 1.0)``: never more than the
        exponential envelope, never degenerate-zero.
        """
        nominal = min(self.max_s, self.base_s * (2.0 ** (attempt - 1)))
        jitter = 0.5 + 0.5 * random.Random(f"{key}#{attempt}").random()
        return nominal * jitter


#: Shared default policy for worker/coordinator storage retries.
DEFAULT_RETRY = RetryPolicy()


def with_backoff(
    fn: Callable[[], T],
    *,
    key: str,
    policy: RetryPolicy = DEFAULT_RETRY,
    counters: Optional["ReliabilityCounters"] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``, retrying **transient** failures with backoff.

    Poison and fatal errors propagate on the first throw; a transient
    one is retried up to ``policy.attempts`` total tries, sleeping
    ``policy.delay_s(key, attempt)`` between them and bumping
    ``counters.retries`` per retry.  The final transient failure
    propagates unchanged, so callers see the real ``OSError``.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            attempt += 1
            if classify_error(exc) != "transient" or attempt >= policy.attempts:
                raise
            if counters is not None:
                counters.retries += 1
            sleep(policy.delay_s(key, attempt))


@dataclass
class ReliabilityCounters:
    """What the storage layer survived, as mergeable counters.

    Attributes
    ----------
    retries:
        Transient-failure retries performed by :func:`with_backoff`.
    quarantines:
        Cache entries that failed verification and were moved to the
        quarantine directory (each with a reason record).
    steals:
        Expired/corrupt leases taken over by another worker.
    fencing_rejections:
        Release/renew attempts refused because the caller's fencing
        token was stale — a stalled worker waking up after its unit
        was stolen and finished.
    corrupt_records:
        Unreadable queue records (leases/done markers) swallowed by
        ``_read_json`` — previously silent, now accounted.
    """

    retries: int = 0
    quarantines: int = 0
    steals: int = 0
    fencing_rejections: int = 0
    corrupt_records: int = 0

    def merge(self, other: "ReliabilityCounters") -> None:
        """Fold another counter set into this one (all fields sum)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self) -> "ReliabilityCounters":
        """An independent copy (for before/after deltas)."""
        return ReliabilityCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def since(self, earlier: "ReliabilityCounters") -> "ReliabilityCounters":
        """Counter delta relative to an earlier snapshot."""
        return ReliabilityCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def any(self) -> bool:
        """True when any counter is nonzero."""
        return any(getattr(self, f.name) for f in fields(self))

    def to_dict(self) -> Dict[str, int]:
        """Plain-JSON form (only ever emitted when :meth:`any`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReliabilityCounters":
        """Inverse of :meth:`to_dict` (tolerates missing/extra keys)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})

    def summary(self) -> str:
        """Compact human rendering of the nonzero counters."""
        parts = [
            f"{f.name.replace('_', ' ')}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name)
        ]
        return ", ".join(parts) if parts else "clean"
