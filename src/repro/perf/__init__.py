"""Performance-regression harness for the simulator core.

A pinned set of microbenchmarks — route lookups, point-to-point
round-trips, and whole ``run_broadcast`` points — measured with
best-of-N wall-clock timing and emitted as ``BENCH_simcore.json``.
Every future PR runs ``python -m repro.perf --compare`` against the
committed baseline (``benchmarks/perf_baseline.json``) so a hot-path
regression shows up as a failing number, not as a slowly rotting sweep.

Cross-machine comparability: each report embeds a *calibration* time
(a fixed pure-Python workload timed on the same interpreter), and
comparisons are done on calibration-normalized wall-clock, so a slower
CI runner does not read as a simulator regression.
"""

from repro.perf.suite import (
    BenchResult,
    Comparison,
    compare_reports,
    load_report,
    run_suite,
    write_report,
)
from repro.perf.timer import BenchTiming, bench, calibrate

__all__ = [
    "BenchResult",
    "BenchTiming",
    "Comparison",
    "bench",
    "calibrate",
    "compare_reports",
    "load_report",
    "run_suite",
    "write_report",
]
