"""Unit tests for the MPI library-collective algorithms."""

from __future__ import annotations

from repro.core import BroadcastProblem, run_broadcast
from repro.core.algorithms import MPIAllGather, MPIAlltoAll
from repro.distributions import DISTRIBUTIONS
from repro.machines import t3d


class TestStructureSelection:
    def test_monolithic_on_paragon(self, square_paragon):
        problem = BroadcastProblem(square_paragon, (0, 5, 9), message_size=64)
        sched = MPIAllGather().build_schedule(problem)
        labels = [r.label for r in sched.rounds]
        assert labels[0] == "gather"
        assert any(lbl.startswith("bcast") for lbl in labels)

    def test_pipelined_on_t3d(self, small_t3d):
        problem = BroadcastProblem(small_t3d, (0, 5, 9), message_size=64)
        sched = MPIAllGather().build_schedule(problem)
        labels = [r.label for r in sched.rounds]
        assert labels[0] == "gatherv"
        assert any(lbl.startswith("ring") for lbl in labels)

    def test_collective_mode_flags_set(self, square_paragon):
        problem = BroadcastProblem(square_paragon, (0, 5), message_size=64)
        for algo in (MPIAllGather(), MPIAlltoAll()):
            sched = algo.build_schedule(problem)
            assert all(r.collective for r in sched.rounds)
            assert all(r.mpi for r in sched.rounds)

    def test_both_validate_on_both_machines(self, square_paragon, small_t3d):
        for machine in (square_paragon, small_t3d):
            for s in (1, 5, machine.p):
                problem = BroadcastProblem(
                    machine, tuple(range(s)), message_size=64
                )
                MPIAllGather().build_schedule(problem).validate()
                MPIAlltoAll().build_schedule(problem).validate()


class TestPipelinedRing:
    def test_segmentation_of_large_messages(self, small_t3d):
        seg = small_t3d.params.collective_segment_bytes
        problem = BroadcastProblem(small_t3d, (3,), message_size=4 * seg)
        sched = MPIAllGather().build_schedule(problem)
        ring = [t for r in sched.rounds for t in r if r.label.startswith("ring")]
        # 4 segments traverse p - 1 edges each
        assert len(ring) == 4 * (small_t3d.p - 1)
        assert all(t.nbytes(problem) == seg for t in ring)

    def test_small_message_single_segment(self, small_t3d):
        problem = BroadcastProblem(small_t3d, (3,), message_size=100)
        sched = MPIAllGather().build_schedule(problem)
        ring = [t for r in sched.rounds for t in r if r.label.startswith("ring")]
        assert len(ring) == small_t3d.p - 1
        assert all(t.nbytes(problem) == 100 for t in ring)

    def test_segment_bytes_sum_to_message(self, small_t3d):
        problem = BroadcastProblem(small_t3d, (3,), message_size=40_000)
        sched = MPIAllGather().build_schedule(problem)
        first_edge_bytes = sum(
            t.nbytes(problem)
            for r in sched.rounds
            if r.label.startswith("ring")
            for t in r
            if t.src == sched.problem.machine.linear_order()[0]
        )
        assert first_edge_bytes == 40_000


class TestPaperShapes:
    def test_paragon_mpi_versions_slower_than_nx(self, square_paragon):
        """Figure 3: MPI variants trail their NX counterparts."""
        src = DISTRIBUTIONS["E"].generate(square_paragon, 30)
        prob = BroadcastProblem(square_paragon, src, message_size=4096)
        assert (
            run_broadcast(prob, "MPI_AllGather").elapsed_us
            > run_broadcast(prob, "2-Step").elapsed_us
        )
        assert (
            run_broadcast(prob, "MPI_Alltoall").elapsed_us
            > run_broadcast(prob, "PersAlltoAll").elapsed_us
        )

    def test_t3d_alltoall_beats_allgather_and_br_lin(self):
        """Figure 13(a): the T3D inverts the Paragon ordering."""
        machine = t3d(128)
        src = DISTRIBUTIONS["E"].generate(machine, 40)
        prob = BroadcastProblem(machine, src, message_size=4096)
        t_a2a = run_broadcast(prob, "MPI_Alltoall").elapsed_us
        t_ag = run_broadcast(prob, "MPI_AllGather").elapsed_us
        t_lin = run_broadcast(prob, "Br_Lin").elapsed_us
        assert t_a2a < t_ag < t_lin

    def test_t3d_allgather_converges_toward_alltoall(self):
        """Figure 13(a): the AllGather/AlltoAll gap narrows as s grows."""
        machine = t3d(128)
        ratios = []
        for s in (10, 100):
            src = DISTRIBUTIONS["E"].generate(machine, s)
            prob = BroadcastProblem(machine, src, message_size=4096)
            t_a2a = run_broadcast(prob, "MPI_Alltoall").elapsed_us
            t_ag = run_broadcast(prob, "MPI_AllGather").elapsed_us
            ratios.append(t_ag / t_a2a)
        assert ratios[1] < ratios[0]

    def test_t3d_fixed_total_faster_with_more_sources(self):
        """Figure 12: spreading a fixed total over more sources helps."""
        machine = t3d(128)
        total = 131072
        times = []
        for s in (4, 64):
            src = DISTRIBUTIONS["E"].generate(machine, s)
            prob = BroadcastProblem(machine, src, message_size=total // s)
            times.append(run_broadcast(prob, "MPI_AllGather").elapsed_us)
        assert times[1] < times[0]
