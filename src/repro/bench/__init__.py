"""Benchmark harness: one experiment per paper table/figure.

Each experiment in :mod:`repro.bench.figures` regenerates the data
behind one figure of the paper's evaluation (§5) and returns a
:class:`~repro.bench.types.FigureResult` holding the measured series,
a paper-style text table, and the *shape checks* from DESIGN.md §4
(who wins, by roughly what factor, where crossovers fall).

Run from the command line::

    python -m repro.bench list
    python -m repro.bench fig3 fig13
    python -m repro.bench all

or through pytest-benchmark (``pytest benchmarks/ --benchmark-only``),
where every experiment is a bench target that prints its table and
asserts its checks.
"""

from __future__ import annotations

from repro.bench.runner import (
    measure_batch,
    measure_grid,
    measure_problem,
    run_batch,
    sweep,
    use_executor,
)
from repro.bench.types import Check, FigureResult, Series

__all__ = [
    "Series",
    "FigureResult",
    "Check",
    "measure_problem",
    "measure_batch",
    "measure_grid",
    "run_batch",
    "sweep",
    "use_executor",
]
