"""Virtual-rank → physical-node mappings.

The algorithms of the paper address *ranks* ``0..p-1``.  How ranks sit
on physical nodes matters enormously:

* On the Paragon, applications ran on a contiguous submesh and the rank
  order was the row-major node order — :class:`IdentityMapping` — or a
  snake-like row-major order when an algorithm views the mesh as a
  linear array — :class:`SnakeMapping`.
* On the T3D, "the mapping of virtual to physical processors cannot be
  controlled by the user" (§5): :class:`RandomMapping` draws a seeded
  random permutation, which is why topology-aware algorithms lose their
  edge there (ablated in ``benchmarks/test_ablation_mapping.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.network.mesh import Mesh2D
from repro.network.topology import Topology

__all__ = ["RankMapping", "IdentityMapping", "SnakeMapping", "RandomMapping"]


class RankMapping(ABC):
    """Bijection between ranks ``0..p-1`` and physical node ids."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._rank_to_node = self._build()
        p = topology.num_nodes
        if sorted(self._rank_to_node) != list(range(p)):
            raise ConfigurationError(
                f"{type(self).__name__} is not a permutation of 0..{p - 1}"
            )
        self._node_to_rank = [0] * p
        for rank, node in enumerate(self._rank_to_node):
            self._node_to_rank[node] = rank

    @abstractmethod
    def _build(self) -> List[int]:
        """Return ``rank_to_node`` as a list of node ids."""

    def node_of(self, rank: int) -> int:
        """Physical node hosting ``rank``."""
        return self._rank_to_node[rank]

    def rank_of(self, node: int) -> int:
        """Rank hosted on physical ``node``."""
        return self._node_to_rank[node]

    @property
    def size(self) -> int:
        """Number of ranks (== number of nodes)."""
        return self.topology.num_nodes

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.topology!r}>"


class IdentityMapping(RankMapping):
    """Rank *i* lives on node *i* (row-major on a mesh)."""

    def _build(self) -> List[int]:
        return list(range(self.topology.num_nodes))


class SnakeMapping(RankMapping):
    """Snake-like (boustrophedon) row-major order on a 2-D mesh.

    Rank order walks row 0 left-to-right, row 1 right-to-left, and so
    on, so consecutive ranks are always physical neighbours — the
    indexing the paper prescribes for ``Br_Lin`` on a mesh.
    """

    def _build(self) -> List[int]:
        topo = self.topology
        if not isinstance(topo, Mesh2D):
            raise ConfigurationError("SnakeMapping requires a Mesh2D topology")
        order: List[int] = []
        for r in range(topo.rows):
            cols = range(topo.cols) if r % 2 == 0 else range(topo.cols - 1, -1, -1)
            order.extend(topo.node_at(r, c) for c in cols)
        return order


class RandomMapping(RankMapping):
    """A seeded uniformly random permutation (T3D production scheduling)."""

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.seed = seed
        super().__init__(topology)

    def _build(self) -> List[int]:
        rng = np.random.default_rng(self.seed)
        return [int(n) for n in rng.permutation(self.topology.num_nodes)]
