"""Raw per-rank, per-iteration communication counters.

The communication layer calls :meth:`MetricsCollector.record_send` /
:meth:`record_recv` on every message; the schedule executor advances
the *iteration* index so counters can be bucketed the way the paper's
Figure 2 defines its parameters (congestion is *per iteration*,
``av_act_proc`` averages *over iterations*, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

__all__ = ["RankCounters", "MetricsCollector"]


@dataclass
class RankCounters:
    """Counters for a single rank.

    ``per_iter_ops`` maps iteration index → number of send+receive
    operations the rank performed in that iteration (the congestion
    bucket); ``msg_lengths`` collects the byte length of every message
    the rank sent or received.
    """

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    recv_wait_time: float = 0.0
    recv_wait_count: int = 0
    link_wait_time: float = 0.0
    copy_time: float = 0.0
    per_iter_ops: Dict[int, int] = field(default_factory=dict)
    msg_lengths: List[int] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        """Total sends plus receives (the paper's #send/rec)."""
        return self.sends + self.recvs

    def max_ops_in_one_iteration(self) -> int:
        """Largest send+receive count in any single iteration."""
        return max(self.per_iter_ops.values(), default=0)


class MetricsCollector:
    """Accumulates counters for all ``p`` ranks of one simulation run."""

    def __init__(self, p: int) -> None:
        self.p = p
        self.ranks = [RankCounters() for _ in range(p)]
        #: iteration → set of ranks that sent or received in it.
        self.active_by_iter: Dict[int, Set[int]] = {}
        #: iteration → virtual time of its last recorded operation
        #: (send issue or receive completion) — the per-round timeline.
        self.last_time_by_iter: Dict[int, float] = {}
        self.iterations_seen: Set[int] = set()

    # -- recording ---------------------------------------------------------
    def record_send(
        self,
        rank: int,
        nbytes: int,
        link_wait: float,
        iteration: int = 0,
        when: float = 0.0,
    ) -> None:
        """Account one message leaving ``rank`` in ``iteration``.

        Iterations are per-rank logical phases (the executor sets them
        from the schedule's round index); ranks progress through them
        asynchronously.  ``when`` is the virtual issue time.
        """
        counters = self.ranks[rank]
        counters.sends += 1
        counters.bytes_sent += nbytes
        counters.link_wait_time += link_wait
        counters.msg_lengths.append(nbytes)
        # Inlined _bump: called once per message, and the collector runs
        # inside the simulation hot loop.
        per_iter = counters.per_iter_ops
        per_iter[iteration] = per_iter.get(iteration, 0) + 1
        self.active_by_iter.setdefault(iteration, set()).add(rank)
        if when > self.last_time_by_iter.get(iteration, -1.0):
            self.last_time_by_iter[iteration] = when
        self.iterations_seen.add(iteration)

    def record_recv(
        self,
        rank: int,
        nbytes: int,
        wait_time: float,
        copy_time: float,
        iteration: int = 0,
        when: float = 0.0,
    ) -> None:
        """Account one message arriving at ``rank`` in ``iteration``."""
        counters = self.ranks[rank]
        counters.recvs += 1
        counters.bytes_received += nbytes
        counters.recv_wait_time += wait_time
        if wait_time > 0.0:
            counters.recv_wait_count += 1
        counters.copy_time += copy_time
        counters.msg_lengths.append(nbytes)
        # Inlined _bump (see record_send).
        per_iter = counters.per_iter_ops
        per_iter[iteration] = per_iter.get(iteration, 0) + 1
        self.active_by_iter.setdefault(iteration, set()).add(rank)
        if when > self.last_time_by_iter.get(iteration, -1.0):
            self.last_time_by_iter[iteration] = when
        self.iterations_seen.add(iteration)
