"""Recovery protocol: gossip + re-serve on the surviving machine."""

from __future__ import annotations

import json

import pytest

from repro.core import BroadcastProblem, run_broadcast, run_recovery
from repro.core.recovery import _gossip_arrows, _surviving_components
from repro.core.runner import BroadcastResult
from repro.faults import FaultSchedule
from repro.machines import paragon


@pytest.fixture(scope="module")
def problem():
    machine = paragon(4, 4)
    return BroadcastProblem(machine, (0, 5, 10), message_size=512)


#: Node 6 dead from the start: a non-source rank is lost (its 3 expected
#: deliveries are unrecoverable) and several live ranks stall mid-
#: schedule, so recovery has genuine work to do.  Max achievable
#: delivery is (16*3 - 3) / (16*3) = 45/48.
DEAD_NODE = "node:6@0us"
MAX_ACHIEVABLE = 45.0 / 48.0


class TestRunBroadcastRecovery:
    def test_recovery_completes_surviving_ranks(self, problem):
        plain = run_broadcast(problem, "Br_xy_source", faults=DEAD_NODE)
        rec = run_broadcast(
            problem, "Br_xy_source", faults=DEAD_NODE, recover=True
        )
        assert plain.delivery < MAX_ACHIEVABLE
        assert rec.delivery == MAX_ACHIEVABLE
        assert rec.recovered is True
        assert rec.recovery_rounds > 0
        assert rec.recovery_time_us > 0.0

    def test_noop_when_nothing_is_missing(self, problem):
        # Br_Lin already delivers everything achievable under this
        # schedule, so recovery detects there is nothing to serve and
        # skips the simulation entirely.
        rec = run_broadcast(problem, "Br_Lin", faults=DEAD_NODE, recover=True)
        assert rec.delivery == MAX_ACHIEVABLE
        assert rec.recovered is True
        assert rec.recovery_rounds == 0
        assert rec.recovery_time_us == 0.0

    def test_connected_link_kill_is_a_free_noop(self, problem):
        # Monotone link kills that leave the mesh connected never lose a
        # message (detours exist at request time), so recovery reports
        # complete without running.
        rec = run_broadcast(
            problem, "Br_xy_dim", faults="link:5-6;link:9-10@100us",
            recover=True,
        )
        assert rec.delivery == 1.0
        assert rec.recovered is True
        assert rec.recovery_rounds == 0

    def test_recovery_is_deterministic(self, problem):
        blobs = {
            json.dumps(
                run_broadcast(
                    problem, "Br_xy_source", faults=DEAD_NODE, recover=True
                ).to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        }
        assert len(blobs) == 1


class TestResultSerialization:
    def test_clean_run_carries_no_recovery_keys(self, problem):
        result = run_broadcast(problem, "Br_Lin")
        assert result.recovered is None
        data = result.to_dict()
        for key in ("recovered", "recovery_rounds", "recovery_time_us"):
            assert key not in data

    def test_recover_without_faults_is_inert(self, problem):
        result = run_broadcast(problem, "Br_Lin", recover=True)
        assert result.recovered is None
        assert "recovered" not in result.to_dict()

    def test_recovering_result_round_trips(self, problem):
        result = run_broadcast(
            problem, "Br_xy_source", faults=DEAD_NODE, recover=True
        )
        clone = BroadcastResult.from_dict(result.to_dict())
        assert clone.recovered == result.recovered
        assert clone.recovery_rounds == result.recovery_rounds
        assert clone.recovery_time_us == result.recovery_time_us
        assert clone.delivery == result.delivery


class TestRunRecoveryDirect:
    def test_missing_message_is_served(self):
        machine = paragon(4, 4)
        problem = BroadcastProblem(machine, (0,), message_size=512)
        start = [frozenset({0})] * machine.p
        start[3] = frozenset()
        outcome = run_recovery(
            problem, start, FaultSchedule.parse("link:5-6")
        )
        assert outcome.holdings[3] == frozenset({0})
        assert outcome.recovered is True
        # ceil(log2 16) folding + as many broadcast-back + one serve round
        assert outcome.rounds == 9
        assert outcome.time_us > 0.0

    def test_message_with_no_live_holder_is_unrecoverable(self):
        machine = paragon(4, 4)
        problem = BroadcastProblem(machine, (0,), message_size=512)
        # Rank 0 (the only holder) dies: nothing fixable remains, so the
        # protocol is a no-op that still counts as "recovered" — it did
        # everything the surviving machine could.
        start = [frozenset()] * machine.p
        start[0] = frozenset({0})
        outcome = run_recovery(problem, start, FaultSchedule.parse("node:0"))
        assert outcome.recovered is True
        assert outcome.rounds == 0
        assert outcome.holdings[0] == frozenset({0})  # dead rank keeps it
        assert all(held == frozenset() for held in outcome.holdings[1:])

    def test_none_entries_count_as_empty(self):
        machine = paragon(4, 4)
        problem = BroadcastProblem(machine, (0,), message_size=512)
        start = [frozenset({0})] * machine.p
        start[7] = None  # rank whose program never returned
        outcome = run_recovery(
            problem, start, FaultSchedule.parse("link:5-6")
        )
        assert outcome.holdings[7] == frozenset({0})
        assert outcome.recovered is True


class TestSurvivingStructure:
    def test_components_split_by_node_death(self):
        machine = paragon(4, 4)
        injector = FaultSchedule.parse("node:6").bind(machine.topology)
        components, dead = _surviving_components(
            injector, machine.build_mapping(0)
        )
        assert dead == frozenset({6})
        assert len(components) == 1
        assert sorted(components[0]) == [r for r in range(16) if r != 6]

    def test_gossip_arrows_reach_everyone(self):
        for n in (2, 3, 5, 8, 13):
            members = list(range(100, 100 + n))
            rounds = _gossip_arrows(members)
            # Fold: every member's contribution must reach members[0].
            contributes = {m: {m} for m in members}
            for arrows in rounds[: len(rounds) // 2 + len(rounds) % 2]:
                for src, dst in arrows:
                    contributes[dst] |= contributes[src]
            # Walk all rounds forward tracking who holds the combined
            # table; by the end every member must have it.
            holders = {members[0]}
            fold_rounds = 0
            for arrows in rounds:
                for src, dst in arrows:
                    contributes[dst] |= contributes[src]
                if contributes[members[0]] == set(members):
                    fold_rounds += 1
                for src, dst in arrows:
                    if src in holders and contributes[src] == set(members):
                        holders.add(dst)
            assert contributes[members[0]] == set(members)
            assert holders == set(members)

    def test_singleton_component_needs_no_gossip(self):
        assert _gossip_arrows([4]) == []
        assert _gossip_arrows([]) == []
