"""Figure 7: Paragon, fixed total spread over more sources."""

from __future__ import annotations

from repro.bench import figures

from benchmarks.conftest import run_experiment


def test_fig07(benchmark):
    """Figure 7: Paragon, fixed total spread over more sources."""
    run_experiment(benchmark, figures.fig07)
