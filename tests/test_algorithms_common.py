"""Unit tests for the halving pattern and GridView machinery."""

from __future__ import annotations

import pytest

from repro.core.algorithms.common import (
    GridView,
    folding_pairs,
    halving_pairs,
    halving_rounds,
    initial_holdings_map,
)
from repro.core.problem import BroadcastProblem
from repro.errors import AlgorithmError


class TestHalvingPairs:
    def test_power_of_two_depth(self):
        assert len(halving_pairs(8)) == 3
        assert len(halving_pairs(16)) == 4

    def test_non_power_of_two_depth_is_ceil_log(self):
        assert len(halving_pairs(10)) == 4
        assert len(halving_pairs(5)) == 3

    def test_single_position_no_rounds(self):
        assert halving_pairs(1) == []

    def test_invalid_n(self):
        with pytest.raises(AlgorithmError):
            halving_pairs(0)

    def test_first_iteration_pairs_across_halves(self):
        pairs = halving_pairs(8)[0]
        assert pairs == [(0, 4, False), (1, 5, False), (2, 6, False), (3, 7, False)]

    def test_odd_segment_has_one_way_feed(self):
        pairs = halving_pairs(5)[0]
        # mid = 3: pairs (0,3), (1,4); extra one-way 2 -> 4
        assert (0, 3, False) in pairs
        assert (1, 4, False) in pairs
        assert (2, 4, True) in pairs

    def test_every_position_touched_across_iterations(self):
        for n in (2, 3, 7, 8, 13, 16, 100):
            touched = set()
            for pairs in halving_pairs(n):
                for a, b, _ in pairs:
                    touched.add(a)
                    touched.add(b)
            if n > 1:
                assert touched == set(range(n)), n

    def test_broadcast_completeness_from_any_single_position(self):
        """Structural check: one holder spreads to every position."""
        for n in (2, 5, 8, 11, 16):
            for start in range(n):
                holders = {start}
                for pairs in halving_pairs(n):
                    snapshot = set(holders)
                    for a, b, one_way in pairs:
                        if a in snapshot:
                            holders.add(b)
                        if not one_way and b in snapshot:
                            holders.add(a)
                assert holders == set(range(n)), (n, start)

    def test_union_completeness_from_all_positions(self):
        """Every position's message reaches every other position."""
        for n in (2, 5, 8, 10, 13):
            sets = {i: {i} for i in range(n)}
            for pairs in halving_pairs(n):
                snap = {i: set(s) for i, s in sets.items()}
                for a, b, one_way in pairs:
                    sets[b] |= snap[a]
                    if not one_way:
                        sets[a] |= snap[b]
            full = set(range(n))
            assert all(s == full for s in sets.values()), n


class TestFoldingPairs:
    def test_mirrors_halving_depth(self):
        for n in (2, 5, 8, 10, 16):
            assert len(folding_pairs(n)) == len(halving_pairs(n))

    def test_arrows_are_reversed_halving_arrows(self):
        folds = folding_pairs(8)
        halves = halving_pairs(8)
        for fold, pairs in zip(folds, reversed(halves)):
            assert fold == [(b, a, True) for a, b, _ in pairs]

    def test_fold_combines_everything_into_position_zero(self):
        """The dual of broadcast completeness: all contributions reach 0."""
        for n in (2, 3, 5, 8, 11, 13, 16):
            sets = {i: {i} for i in range(n)}
            for pairs in folding_pairs(n):
                snap = {i: set(s) for i, s in sets.items()}
                for src, dst, one_way in pairs:
                    assert one_way  # folds only ever push downward
                    sets[dst] |= snap[src]
            assert sets[0] == set(range(n)), n

    def test_rounds_have_disjoint_senders_and_receivers(self):
        # A position never sends and receives in the same fold round,
        # so a lock-step send/recv program cannot deadlock.
        for n in (3, 5, 8, 13):
            for pairs in folding_pairs(n):
                senders = {src for src, _, _ in pairs}
                receivers = {dst for _, dst, _ in pairs}
                assert not senders & receivers, n


class TestHalvingRounds:
    def test_one_way_send_when_one_side_empty(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (0,), message_size=10)
        order = list(range(20))
        holdings = initial_holdings_map(problem, order)
        rounds = halving_rounds(order, holdings)
        # first round: only 0 -> 10 (one-way), nothing else has data
        assert len(rounds[0]) == 1
        t = rounds[0][0]
        assert (t.src, t.dst) == (0, 10)

    def test_exchange_when_both_hold(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (0, 10), message_size=10)
        order = list(range(20))
        holdings = initial_holdings_map(problem, order)
        rounds = halving_rounds(order, holdings)
        first = {(t.src, t.dst) for t in rounds[0]}
        assert (0, 10) in first and (10, 0) in first

    def test_silence_when_both_empty(self, small_paragon):
        """With one source, only p - 1 one-way transfers ever happen —
        empty-empty pairs stay silent."""
        problem = BroadcastProblem(small_paragon, (0,), message_size=10)
        order = list(range(20))
        holdings = initial_holdings_map(problem, order)
        rounds = halving_rounds(order, holdings)
        assert sum(len(r) for r in rounds) == 19
        # round 0 pairs 10 positions but only one holds data
        assert len(rounds[0]) == 1

    def test_holdings_updated_in_place(self, small_paragon):
        problem = BroadcastProblem(small_paragon, (0, 10), message_size=10)
        order = list(range(20))
        holdings = initial_holdings_map(problem, order)
        halving_rounds(order, holdings)
        full = frozenset({0, 10})
        assert all(holdings[r] == full for r in order)


class TestGridView:
    def test_full_machine_layout(self):
        view = GridView.full_machine(2, 3)
        assert view.cells == ((0, 1, 2), (3, 4, 5))
        assert view.rows == 2 and view.cols == 3

    def test_lines(self):
        view = GridView.full_machine(2, 3)
        assert view.row_lines() == [[0, 1, 2], [3, 4, 5]]
        assert view.col_lines() == [[0, 3], [1, 4], [2, 5]]

    def test_all_ranks_row_major(self):
        view = GridView.full_machine(2, 3)
        assert view.all_ranks() == [0, 1, 2, 3, 4, 5]

    def test_snake_order(self):
        view = GridView.full_machine(3, 3)
        assert view.snake_order() == [0, 1, 2, 5, 4, 3, 6, 7, 8]

    def test_split_prefers_larger_dimension(self):
        left, right = GridView.full_machine(2, 4).split()
        assert left.cols == right.cols == 2
        assert left.all_ranks() == [0, 1, 4, 5]
        assert right.all_ranks() == [2, 3, 6, 7]

    def test_split_falls_back_to_even_dimension(self):
        top, bottom = GridView.full_machine(4, 5).split()
        assert top.rows == bottom.rows == 2

    def test_split_rejects_doubly_odd(self):
        with pytest.raises(AlgorithmError):
            GridView.full_machine(3, 5).split()
        assert not GridView.full_machine(3, 5).splittable

    def test_ragged_rows_rejected(self):
        with pytest.raises(AlgorithmError):
            GridView([[0, 1], [2]])

    def test_empty_rejected(self):
        with pytest.raises(AlgorithmError):
            GridView([])
