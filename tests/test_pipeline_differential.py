"""Config-driven experiments are bit-identical to the figure functions.

The contract behind ``python -m repro report``: a declarative config
expands into the *same* measurement calls its hand-written
``repro.bench.figures`` counterpart makes, so the rendered report text
— every table cell, every check verdict, every detail string — is
equal character for character.  One representative config per series
kind keeps this inside the tier-1 time budget; the full 13-figure
differential rides in the bench suite (``benchmarks/``), which runs
the same pipeline path.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import ALL_FIGURES
from repro.pipeline.loader import load_config_dir
from repro.pipeline.runner import run_experiment

#: One config per declarative series kind (and the fixed-total variant).
REPRESENTATIVES = {
    "fig6": "cells (distribution axis)",
    "fig7": "sweep with total_bytes",
    "fig8": "machines_by_s",
    "fig9": "percent_gain",
    "fig11": "dist_curves",
}


@pytest.fixture(scope="module")
def configs():
    return load_config_dir()


@pytest.mark.parametrize("experiment_id", sorted(REPRESENTATIVES))
def test_config_matches_figure_function(configs, experiment_id):
    config = configs[experiment_id]
    declarative = run_experiment(config, quick=True)
    handwritten = ALL_FIGURES[experiment_id](True)
    assert declarative.report() == handwritten.report()


def test_every_figure_has_a_config(configs):
    """No bench figure is missing from configs/ (and vice versa)."""
    config_ids = set(configs)
    assert set(ALL_FIGURES) <= config_ids


def test_builder_config_dispatches_to_the_figure_function(configs):
    """Builder-kind configs run the original callable unchanged."""
    result = run_experiment(configs["fig1"], quick=True)
    assert result.report() == ALL_FIGURES["fig1"](True).report()
    assert len(result.checks) == configs["fig1"].num_checks
