"""Amortized lowering: an in-process cache of lowered plans.

Sweeps evaluate thousands of points that differ only in message length,
repetition seed, or contention flag — but share the *schedule-
determining* subset of the point: machine spec, algorithm, and source
placement.  The schedule build + validation + lowering for such points
is identical work, so this module caches it per worker process:

* a :class:`PlanCache` maps ``(machine spec, algorithm, sources)`` to a
  lowered :class:`~repro.fastpath.lowering.FastPlan` plus everything
  the runner needs around it (validation state, the lazily computed
  delivery-verification verdict, per-seed link-path bindings,
  per-size-table rebinds);
* :func:`evaluate_problem` is the runner's fast-path entry: resolve the
  cache, bind the point's sizes and seed, replay through the kernel,
  and return a :class:`FastOutcome`.

**Size discipline.**  A plan's structure is usually size-independent
(whole messages move; byte counts are sums over CSR message sets), and
then one cached structure serves every message length via
:meth:`FastPlan.rebind_sizes` — bit-identical to fresh lowering.  Two
guards keep this safe: algorithms whose *round structure* depends on
sizes declare it (:meth:`BroadcastAlgorithm.schedule_depends_on_sizes`
— the pipelined MPI_AllGather segments by length), and the lowering
itself probes reusability per plan (:attr:`FastPlan.size_reusable`).
Either guard failing keys the entry by the full size signature instead.

Machines without a canonical spec (ad-hoc topologies, overridden
parameters) bypass the cache entirely — there is no stable identity to
key on.

The cache is engine-invisible: hits, misses and bypasses produce
bit-identical results (the differential tests replay warm-cache points
against the event engine), and cache state never leaks into result
bytes or sweep cache keys.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import VerificationError
from repro.fastpath.evaluator import (
    FastRunResult,
    PlanBinding,
    bind_plan,
    evaluate_plan,
)
from repro.fastpath.lowering import FastPlan, lower_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.algorithms.base import BroadcastAlgorithm
    from repro.core.problem import BroadcastProblem
    from repro.core.schedule import Schedule

__all__ = [
    "FastOutcome",
    "PlanCache",
    "evaluate_problem",
    "plan_cache",
    "clear",
    "stats",
]

#: Lowered-plan entries kept per process (LRU).
DEFAULT_CAPACITY = 64
#: Size-table rebinds kept per entry (LRU).
BINDING_CAPACITY = 32
#: Link-path bindings kept per entry (LRU; one covers all seeds on
#: machines with seed-independent rank placement).
PATH_CAPACITY = 8

_UNSET = object()


@dataclass(frozen=True)
class FastOutcome:
    """Everything the runner needs from one fast-path evaluation."""

    fast: FastRunResult
    #: The schedule's algorithm label (``schedule.algorithm`` fallback
    #: to the registry name) — what ``BroadcastResult.algorithm`` shows.
    algorithm: str
    num_rounds: int
    num_transfers: int
    #: Cache verdict for debug surfacing: ``hit`` | ``miss`` | ``bypass``.
    plan_cache: str


class _PlanEntry:
    """One cached lowering with its per-run binding caches."""

    __slots__ = (
        "plan",
        "schedule",
        "algorithm_label",
        "algorithm_name",
        "built_sig",
        "validated",
        "_verify_failure",
        "size_bindings",
        "path_bindings",
    )

    def __init__(
        self,
        plan: FastPlan,
        schedule: "Schedule",
        algorithm_name: str,
        built_sig: Tuple[int, ...],
        validated: bool,
    ) -> None:
        self.plan = plan
        self.schedule = schedule
        self.algorithm_label = schedule.algorithm or algorithm_name
        self.algorithm_name = algorithm_name
        self.built_sig = built_sig
        self.validated = validated
        self._verify_failure = _UNSET
        self.size_bindings: "OrderedDict[Tuple[int, ...], FastPlan]" = (
            OrderedDict()
        )
        self.path_bindings: "OrderedDict[int, PlanBinding]" = OrderedDict()

    def verify_failure(self, problem: "BroadcastProblem") -> Optional[str]:
        """Delivery-check verdict, computed once per entry.

        Simulated delivery is a pure function of the schedule structure
        and the source set — both part of the cache key — so the first
        verification covers every replay of this entry.
        """
        if self._verify_failure is _UNSET:
            failure = None
            expected = problem.source_set
            for rank, held in enumerate(self.schedule.holdings_after()):
                if held != expected:
                    missing = sorted(expected - held)
                    failure = (
                        f"{self.algorithm_name}: rank {rank} finished without "
                        f"messages {missing[:8]} (simulated delivery check)"
                    )
                    break
            self._verify_failure = failure
        return self._verify_failure

    def plan_for(self, sig: Tuple[int, ...], problem: "BroadcastProblem") -> FastPlan:
        """The plan bound to ``problem``'s size table (LRU-cached)."""
        if sig == self.built_sig:
            return self.plan
        plan = self.size_bindings.get(sig)
        if plan is None:
            plan = self.plan.rebind_sizes(problem)
            self.size_bindings[sig] = plan
            if len(self.size_bindings) > BINDING_CAPACITY:
                self.size_bindings.popitem(last=False)
            _CACHE.counters["size_rebinds"] += 1
        else:
            self.size_bindings.move_to_end(sig)
        return plan

    def binding_for(self, machine, seed: int) -> PlanBinding:
        """Link paths under ``seed``'s rank mapping (LRU-cached).

        Paths depend only on the plan *structure* and the mapping, so
        one binding serves every size rebind of this entry; machines
        with seed-independent placement collapse all seeds onto one.
        """
        bkey = 0 if machine.topology_stable_ranks else seed
        binding = self.path_bindings.get(bkey)
        if binding is None:
            binding = bind_plan(self.plan, machine, seed)
            self.path_bindings[bkey] = binding
            if len(self.path_bindings) > PATH_CAPACITY:
                self.path_bindings.popitem(last=False)
        else:
            self.path_bindings.move_to_end(bkey)
        return binding


class PlanCache:
    """LRU cache of lowered plans, keyed by schedule-determining data."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _PlanEntry]" = OrderedDict()
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "bypasses": 0,
            "size_rebinds": 0,
        }

    def get(self, key: tuple) -> Optional[_PlanEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, entry: _PlanEntry) -> None:
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        for name in self.counters:
            self.counters[name] = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot plus the current entry count."""
        data = dict(self.counters)
        data["entries"] = len(self._entries)
        return data

    def __len__(self) -> int:
        return len(self._entries)


#: The per-process cache instance (worker processes each get their own).
_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` singleton."""
    return _CACHE


def clear() -> None:
    """Reset the process-wide cache (tests and cold-path benchmarks)."""
    _CACHE.clear()


def stats() -> Dict[str, int]:
    """Counter snapshot of the process-wide cache."""
    return _CACHE.stats()


def _size_sig(problem: "BroadcastProblem") -> Tuple[int, ...]:
    """The per-source byte table as a tuple (sources are sorted)."""
    size_of = problem.size_of
    return tuple(size_of(r) for r in problem.sources)


def evaluate_problem(
    problem: "BroadcastProblem",
    algorithm: "BroadcastAlgorithm",
    *,
    seed: int = 0,
    contention: bool = True,
    validate: bool = True,
    verify: bool = True,
) -> FastOutcome:
    """Build-or-reuse the lowering for ``(problem, algorithm)`` and replay.

    The fast-path equivalent of the runner's build → validate →
    simulate → verify pipeline, with the first two stages (and the
    verification verdict) amortized across every point that shares this
    problem's machine spec, algorithm and source placement.  Raises
    exactly what the un-cached pipeline would: ``AlgorithmError`` from
    build/validate, ``DeadlockError`` from the replay,
    ``VerificationError`` from the delivery check.
    """
    machine = problem.machine
    spec = machine.spec
    if spec is None:
        # Ad-hoc machine: no stable identity to key on — run un-cached.
        _CACHE.counters["bypasses"] += 1
        schedule = algorithm.build_schedule(problem)
        if validate:
            schedule.validate()
        plan = lower_schedule(schedule)
        entry = _PlanEntry(
            plan,
            schedule,
            algorithm.name,
            _size_sig(problem),
            validated=validate,
        )
        return _replay(entry, plan, problem, machine, seed, contention,
                       verify, "bypass")

    sig = _size_sig(problem)
    key_base = (spec, algorithm.name, problem.sources)
    sized_structure = algorithm.schedule_depends_on_sizes(problem)
    entry = None
    if not sized_structure:
        entry = _CACHE.get(key_base + ("any",))
    if entry is None:
        entry = _CACHE.get(key_base + ("sized", sig))

    if entry is not None:
        _CACHE.counters["hits"] += 1
        verdict = "hit"
        if validate and not entry.validated:
            entry.schedule.validate()
            entry.validated = True
    else:
        _CACHE.counters["misses"] += 1
        verdict = "miss"
        schedule = algorithm.build_schedule(problem)
        if validate:
            schedule.validate()
        plan = lower_schedule(schedule)
        entry = _PlanEntry(plan, schedule, algorithm.name, sig,
                           validated=validate)
        if plan.size_reusable and not sized_structure:
            _CACHE.put(key_base + ("any",), entry)
        else:
            _CACHE.put(key_base + ("sized", sig), entry)

    plan = entry.plan_for(sig, problem)
    return _replay(entry, plan, problem, machine, seed, contention,
                   verify, verdict)


def _replay(
    entry: _PlanEntry,
    plan: FastPlan,
    problem: "BroadcastProblem",
    machine,
    seed: int,
    contention: bool,
    verify: bool,
    verdict: str,
) -> FastOutcome:
    """Kernel replay + delivery check, shared by all cache verdicts."""
    binding = entry.binding_for(machine, seed)
    fast = evaluate_plan(
        plan, machine, seed=seed, contention=contention, binding=binding
    )
    if verify:
        failure = entry.verify_failure(problem)
        if failure is not None:
            raise VerificationError(failure)
    return FastOutcome(
        fast=fast,
        algorithm=entry.algorithm_label,
        num_rounds=plan.num_rounds,
        num_transfers=plan.num_sends,
        plan_cache=verdict,
    )
