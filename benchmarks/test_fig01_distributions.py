"""Figure 1: the three §4 placements rendered and checked."""

from __future__ import annotations

from repro.bench import figures

from benchmarks.conftest import run_experiment


def test_fig01(benchmark):
    """Figure 1: the three §4 placements rendered and checked."""
    run_experiment(benchmark, figures.fig01)
