"""Post-fault recovery: complete a broadcast on the surviving machine.

After a fault-injected primary run some ranks are missing messages —
either because every route to them died mid-transfer or because they
stalled waiting on a dead peer.  Recovery closes the gap with two
simulated phases on the *surviving* topology (all injected faults
active from t=0, since by now they have all landed):

1. **Gossip** — within each connected component of live nodes, ranks
   combine a table ``rank -> delivery bitmap`` (which source messages
   each rank holds) using the paper's recursive-halving structure run
   backwards (:func:`~repro.core.algorithms.common.folding_pairs`, a
   combining fold to the component head) and forwards again
   (:func:`~repro.core.algorithms.common.halving_pairs`, a broadcast
   back out).  Träff's observation that recovery re-dissemination "is
   just another broadcast round" is taken literally: the gossip *is*
   the Br_Lin communication structure on the component's members.
2. **Serve** — every rank derives the same deterministic serve plan
   from its gossiped table (lowest-ranked holder re-serves each missing
   message, transfers grouped per (holder, receiver) pair) and executes
   its own entries in global plan order over a
   :class:`~repro.mpsim.reliable.ReliableComm`, whose fault-detoured
   routes, retransmissions and failure detection make the phase
   deadlock-free: every transfer ends in bounded time with either an
   ACK or a :class:`~repro.errors.PeerFailedError`.

Ranks on dead nodes keep whatever they had combined before dying;
components that lost every holder of some message simply cannot recover
it — :func:`run_recovery` reports whether everything *achievable* was
in fact achieved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.algorithms.common import folding_pairs, halving_pairs
from repro.core.problem import BroadcastProblem
from repro.errors import PeerFailedError, RecvTimeoutError
from repro.faults.spec import FaultSchedule
from repro.mpsim.comm import ANY_SOURCE, Comm
from repro.mpsim.reliable import ReliableComm, transfer_budget
from repro.simulator.trace import Tracer

__all__ = ["RecoveryOutcome", "run_recovery"]

#: User tag of the serve phase (gossip uses tags 0..rounds-1).
SERVE_TAG = 1 << 20
#: Wait multiplier on the one-transfer budget for receive timeouts:
#: covers the peer's own sequential sends plus a full retry ladder.
_RECV_SLACK = 64.0


@dataclass(frozen=True)
class RecoveryOutcome:
    """What one recovery pass accomplished."""

    #: Every achievable (rank, message) delivery was in fact achieved.
    recovered: bool
    #: Communication rounds of the recovery protocol (gossip + serve).
    rounds: int
    #: Virtual time the recovery pass took (its own clock, from 0).
    time_us: float
    #: Final per-rank message sets after recovery.
    holdings: Tuple[FrozenSet[int], ...]


def _shifted_to_zero(schedule: FaultSchedule) -> FaultSchedule:
    """The schedule with every fault active from t=0.

    Recovery starts after the primary run, when every scheduled fault
    has already landed; the recovery pass therefore sees the machine's
    *end state* for its whole duration.
    """
    return FaultSchedule(
        tuple(replace(fault, at_us=0.0) for fault in schedule.faults)
    )


def _surviving_components(
    injector: Any, mapping: Any
) -> Tuple[List[List[int]], FrozenSet[int]]:
    """``(components, dead_ranks)`` of the end-state machine, in ranks.

    Components are sorted rank lists over live nodes, connected by
    wire links alive in *both* directions (link faults kill pairs, so
    this only excludes asymmetric topologies' one-way edges, which
    cannot carry a request/ACK conversation anyway).
    """
    topology = injector.topology
    now = 0.0
    live = [
        node
        for node in range(topology.num_nodes)
        if not injector.node_dead(node, now)
    ]
    dead_ranks = frozenset(
        mapping.rank_of(node)
        for node in range(topology.num_nodes)
        if injector.node_dead(node, now)
    )
    seen: Dict[int, int] = {}
    components: List[List[int]] = []
    for start in live:
        if start in seen:
            continue
        index = len(components)
        members = [start]
        seen[start] = index
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in topology.neighbors(u):
                if v in seen or injector.node_dead(v, now):
                    continue
                if injector.link_dead(topology.wire_link(u, v), now):
                    continue
                if topology.has_wire_link(v, u) and injector.link_dead(
                    topology.wire_link(v, u), now
                ):
                    continue
                seen[v] = index
                members.append(v)
                frontier.append(v)
        components.append(sorted(mapping.rank_of(node) for node in members))
    return components, dead_ranks


def _gossip_arrows(members: Sequence[int]) -> List[List[Tuple[int, int]]]:
    """Per-round ``(src_rank, dst_rank)`` arrows of the gossip phase.

    Fold every member's table into the component head (position 0),
    then broadcast the combined table back out along the forward
    halving structure — only arrows out of already-complete positions
    are scheduled on the way back.
    """
    n = len(members)
    if n <= 1:
        return []
    rounds: List[List[Tuple[int, int]]] = []
    for pairs in folding_pairs(n):
        rounds.append(
            [(members[src], members[dst]) for src, dst, _one_way in pairs]
        )
    reached = {0}
    for pairs in halving_pairs(n):
        arrows: List[Tuple[int, int]] = []
        for pos_a, pos_b, one_way in pairs:
            if pos_a in reached and pos_b not in reached:
                arrows.append((members[pos_a], members[pos_b]))
                reached.add(pos_b)
            elif not one_way and pos_b in reached and pos_a not in reached:
                arrows.append((members[pos_b], members[pos_a]))
                reached.add(pos_a)
        rounds.append(arrows)
    return rounds


def _plan_serves(
    table: Dict[int, FrozenSet[int]],
    members: Sequence[int],
    expected: FrozenSet[int],
    problem: BroadcastProblem,
) -> List[Tuple[int, int, FrozenSet[int], int]]:
    """Deterministic serve plan ``(holder, receiver, msgset, nbytes)``.

    A pure function of the gossiped table, so every member that saw the
    same gossip derives the identical plan — the common knowledge that
    makes the lock-step serve phase work without extra coordination.
    """
    holder_of: Dict[int, int] = {}
    for rank in members:
        for message in table.get(rank, frozenset()):
            if message in expected and message not in holder_of:
                holder_of[message] = rank
            elif message in expected and rank < holder_of[message]:
                holder_of[message] = rank
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for rank in members:
        missing = expected - table.get(rank, frozenset())
        for message in sorted(missing):
            holder = holder_of.get(message)
            if holder is None or holder == rank:
                continue
            grouped.setdefault((holder, rank), []).append(message)
    plan: List[Tuple[int, int, FrozenSet[int], int]] = []
    for (holder, receiver) in sorted(grouped):
        msgset = frozenset(grouped[(holder, receiver)])
        plan.append((holder, receiver, msgset, problem.nbytes(msgset)))
    return plan


def _table_nbytes(entries: int, num_sources: int) -> int:
    """Wire size of a gossip table: 4-byte rank id + delivery bitmap."""
    return entries * (4 + (num_sources + 7) // 8)


def _rank_program(
    comm: Comm,
    start: Sequence[FrozenSet[int]],
    members_of: Dict[int, Sequence[int]],
    gossip_of: Dict[int, Sequence[Sequence[Tuple[int, int]]]],
    expected: FrozenSet[int],
    problem: BroadcastProblem,
) -> Generator[Any, Any, Tuple[FrozenSet[int], float]]:
    """The SPMD recovery program for one rank.

    Returns ``(final holdings, finish time)``.  The finish time is
    reported per rank because the engine clock keeps ticking through
    the stale timers left behind by won timeout races — the protocol is
    over when the last *rank* finishes, not when the calendar drains.
    """
    rank = comm.rank
    holdings = set(start[rank])
    members = members_of.get(rank)
    if members is None:
        # Dead node (or isolated by construction): nothing to do.
        return frozenset(holdings), comm.now
    reliable = ReliableComm(comm)
    table: Dict[int, FrozenSet[int]] = {rank: frozenset(holdings)}
    num_sources = len(expected)
    max_table = _table_nbytes(len(members), num_sources)
    gossip_wait = _RECV_SLACK * transfer_budget(comm, max_table)
    with comm.world.engine.span("recovery-gossip", rank=rank):
        for round_idx, arrows in enumerate(gossip_of[rank]):
            receives = 0
            for src, dst in arrows:
                if src == rank:
                    try:
                        yield from reliable.send(
                            dst,
                            dict(table),
                            _table_nbytes(len(table), num_sources),
                            tag=round_idx,
                        )
                    except PeerFailedError:
                        continue
                elif dst == rank:
                    receives += 1
            for _ in range(receives):
                try:
                    envelope = yield from reliable.recv(
                        ANY_SOURCE, tag=round_idx, timeout_us=gossip_wait
                    )
                except (PeerFailedError, RecvTimeoutError):
                    continue
                for peer, held in envelope.payload.items():
                    table[peer] = table.get(peer, frozenset()) | held
    # All members derive the same plan from the (normally identical)
    # gossiped tables and walk it in global order: the earliest
    # unfinished entry always has both endpoints at it, so the phase
    # makes progress, and reliable timeouts bound every entry even when
    # a table diverged.
    plan = _plan_serves(table, members, expected, problem)
    with comm.world.engine.span("recovery-serve", rank=rank):
        for holder, receiver, msgset, nbytes in plan:
            if holder == rank:
                try:
                    yield from reliable.send(
                        receiver, msgset, nbytes, tag=SERVE_TAG
                    )
                except PeerFailedError:
                    continue
            elif receiver == rank:
                wait = _RECV_SLACK * transfer_budget(comm, nbytes)
                try:
                    envelope = yield from reliable.recv(
                        holder, tag=SERVE_TAG, timeout_us=wait
                    )
                except (PeerFailedError, RecvTimeoutError):
                    continue
                holdings.update(envelope.payload)
    return frozenset(holdings), comm.now


def run_recovery(
    problem: BroadcastProblem,
    start_holdings: Sequence[Optional[FrozenSet[int]]],
    faults: FaultSchedule,
    *,
    seed: int = 0,
    contention: bool = True,
    tracer: Optional[Tracer] = None,
) -> RecoveryOutcome:
    """Run the recovery protocol after a faulty primary run.

    ``start_holdings`` is the per-rank delivery state the primary run
    ended with (``None`` entries — ranks whose program never produced a
    value — count as empty).  Returns the completed holdings together
    with the achieved-vs-achievable verdict and the protocol's cost.
    """
    machine = problem.machine
    expected = problem.source_set
    start: List[FrozenSet[int]] = [
        frozenset(held) if held is not None else frozenset()
        for held in start_holdings
    ]
    end_state = _shifted_to_zero(faults)
    injector = end_state.bind(machine.topology, seed)
    mapping = machine.build_mapping(seed)
    components, dead_ranks = _surviving_components(injector, mapping)
    members_of: Dict[int, Sequence[int]] = {}
    gossip_of: Dict[int, Sequence[Sequence[Tuple[int, int]]]] = {}
    rounds = 0
    for members in components:
        arrows = _gossip_arrows(members)
        rounds = max(rounds, len(arrows))
        for rank in members:
            members_of[rank] = members
            gossip_of[rank] = arrows
    # Achievable: each live rank can reach the union of its component's
    # surviving holdings; dead ranks keep what they combined before dying.
    achievable = 0
    serves_needed = False
    for members in components:
        union = frozenset().union(*(start[rank] for rank in members))
        reachable = union & expected
        for rank in members:
            achievable += len(reachable)
            if not reachable <= start[rank]:
                serves_needed = True
    for rank in dead_ranks:
        achievable += len(start[rank] & expected)
    if serves_needed:
        rounds += 1
    else:
        # Nothing is missing anywhere (or nothing is fixable): skip the
        # simulation entirely — recovery is a free no-op.
        achieved = sum(len(held & expected) for held in start)
        return RecoveryOutcome(
            recovered=achieved >= achievable,
            rounds=0,
            time_us=0.0,
            holdings=tuple(start),
        )
    result = machine.run(
        lambda comm: _rank_program(
            comm, start, members_of, gossip_of, expected, problem
        ),
        seed=seed,
        contention=contention,
        tracer=tracer,
        faults=end_state,
        allow_partial=True,
    )
    final: List[FrozenSet[int]] = []
    finish = 0.0
    for rank, returned in enumerate(result.returns):
        if returned is None:
            final.append(start[rank])
        else:
            held, finished_at = returned
            final.append(held)
            finish = max(finish, finished_at)
    achieved = sum(len(held & expected) for held in final)
    return RecoveryOutcome(
        recovered=achieved >= achievable,
        rounds=rounds,
        time_us=finish,
        holdings=tuple(final),
    )
