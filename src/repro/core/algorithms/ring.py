"""Algorithm Br_Ring — a pipelined-ring extension (not in the paper).

The natural bandwidth-optimal alternative to recursive halving: view
the machine as a ring over the linear (snake) order and let every
source's message travel around it, one hop per round, all messages
pipelined.  Each processor receives exactly ``s`` messages of size
``L`` — total received bytes are the information-theoretic minimum
``s·L`` (Br_Lin moves ~2x that through each processor) — at the price
of O(p) rounds of per-message software overhead.

This is the paper's design space probed from the other end: where
``Br_Lin`` minimises rounds (log p) and pays in message growth,
``Br_Ring`` minimises bytes and pays in round count.  The extension
bench (``benchmarks/test_extension_ring.py``) shows the crossover:
``Br_Ring`` wins when messages are large relative to the per-message
overhead (bandwidth-bound regime), loses on overhead-bound problems —
and the crossover sits at much smaller L on the T3D than the Paragon.
"""

from __future__ import annotations

from typing import List

from repro.core.algorithms.base import BroadcastAlgorithm, register
from repro.core.problem import BroadcastProblem
from repro.core.schedule import Schedule, Transfer

__all__ = ["BrRing"]


@register
class BrRing(BroadcastAlgorithm):
    """All source messages pipelined around the linear-order ring."""

    name = "Br_Ring"
    requires_mesh = False

    def build_schedule(self, problem: BroadcastProblem) -> Schedule:
        schedule = Schedule(problem, algorithm=self.name)
        order = problem.machine.linear_order()
        p = len(order)
        if p == 1:
            return schedule
        position = {rank: idx for idx, rank in enumerate(order)}
        # Message m starts at its source's ring position and must travel
        # p - 1 hops (wrapping) to visit everyone.  In round r, message m
        # crosses its (r - start_offset)-th hop; messages never collide
        # on an edge in the same round because each edge carries at most
        # one message per round only if sources are distinct positions —
        # multiple messages *can* share an edge in a round, which the
        # executor's FIFO matching handles and the fabric charges.
        rounds: List[List[Transfer]] = [[] for _ in range(p - 1)]
        for src_rank in problem.sources:
            start = position[src_rank]
            for hop in range(p - 1):
                u = order[(start + hop) % p]
                v = order[(start + hop + 1) % p]
                rounds[hop].append(Transfer(u, v, frozenset((src_rank,))))
        with schedule.span("ring"):
            for idx, transfers in enumerate(rounds):
                schedule.add_round(transfers, label=f"ring-{idx}")
        return schedule
