"""Figure 8: 120-node Paragon, dimension sweep."""

from __future__ import annotations

from repro.bench import figures

from benchmarks.conftest import run_experiment


def test_fig08(benchmark):
    """Figure 8: 120-node Paragon, dimension sweep."""
    run_experiment(benchmark, figures.fig08)
