"""Setuptools shim for editable installs in offline environments."""
from setuptools import setup

setup()
