"""Storage reliability layer for the sweep's control and data planes.

The distributed sweep (:mod:`repro.sweep.distributed`) trusts exactly
two things: the content-addressed result cache (data plane) and the
on-disk lease queue (control plane).  Both live on real filesystems,
where writes tear, disks fill, processes die mid-``rename``, and a
SIGSTOPped worker can wake up long after the world moved on.  This
package makes those hazards first-class, testable inputs — the same
move :mod:`repro.faults` made for the *simulated* fabric:

* :mod:`repro.reliability.iofaults` — an injectable IO backend.  Every
  filesystem call :class:`~repro.sweep.cache.ResultCache` and
  :class:`~repro.sweep.distributed.WorkQueue` make routes through an
  :class:`IOBackend`; the default is a thin passthrough, and
  :class:`FaultyIO` applies a seeded :class:`IOFaultPlan` (grammar
  ``torn:write@K`` / ``err:ENOSPC@K`` / ``crash@K`` /
  ``stall:read@K+D``, mirroring the simulator's fault specs).
* :mod:`repro.reliability.envelope` — self-verifying storage: the
  versioned ``repro-cache/2`` entry envelope with an embedded sha256,
  verified on every read; legacy v1 entries stay readable.
* :mod:`repro.reliability.retry` — transient / fatal / poison error
  classification and bounded, deterministically-jittered exponential
  backoff, plus the :class:`ReliabilityCounters` rolled into
  :class:`~repro.metrics.progress.SweepReport`.
* :mod:`repro.reliability.harness` — the crash-consistency harness:
  replay a worker's store/claim/renew/release sequence with a crash
  injected at *every* IO-op index and assert the cache never serves
  unverified bytes, the queue always recovers, and the resumed sweep
  is bit-identical to serial.

Layering: the three library modules sit below :mod:`repro.sweep` (which
consumes them) and import only :mod:`repro.errors`; the harness is the
deliberate exception — it is a test driver that exercises
:mod:`repro.sweep` end-to-end, and is therefore not re-exported here.
"""

from __future__ import annotations

from repro.reliability.envelope import (
    ENTRY_SCHEMA_V2,
    EnvelopeError,
    open_envelope,
    seal_envelope,
)
from repro.reliability.iofaults import (
    RAW_IO,
    FaultyIO,
    IOBackend,
    IOFault,
    IOFaultPlan,
    SimulatedCrash,
)
from repro.reliability.retry import (
    DEFAULT_RETRY,
    ReliabilityCounters,
    RetryPolicy,
    classify_error,
    with_backoff,
)

__all__ = [
    "DEFAULT_RETRY",
    "ENTRY_SCHEMA_V2",
    "EnvelopeError",
    "FaultyIO",
    "IOBackend",
    "IOFault",
    "IOFaultPlan",
    "RAW_IO",
    "ReliabilityCounters",
    "RetryPolicy",
    "SimulatedCrash",
    "classify_error",
    "open_envelope",
    "seal_envelope",
    "with_backoff",
]
