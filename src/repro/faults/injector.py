"""Run-time fault state: a :class:`FaultSchedule` bound to a topology.

The injector is the single source of truth the fabric and the message
layer consult during a run:

* :meth:`plan` — the fault-aware link path for a transfer.  When the
  dimension-order route crosses a dead link (or a dead intermediate
  node), a deterministic BFS finds the shortest detour over the
  surviving links; when no detour exists the transfer is undeliverable
  (``None``) and the message is lost.
* :meth:`node_dead` — whether a send into a node must fail at the
  sender (:class:`~repro.errors.PeerFailedError`).
* :meth:`byte_factor` / :meth:`link_factor` — bandwidth-degradation
  multipliers for the per-byte wire time.

Everything is deterministic: degraded link subsets are drawn from a
generator seeded by the schedule's canonical string and the run seed
(string seeding is hash-randomisation-independent), detour BFS visits
neighbours in sorted order, and fault activation depends only on the
transfer's request time.  Faults apply at *request* time — a worm that
acquired its path before a link died completes normally, mirroring the
path-reservation approximation the fabric already makes.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.spec import (
    DegradeFault,
    Endpoint,
    FaultSchedule,
    LinkFault,
    NodeFault,
)
from repro.network.topology import Topology

__all__ = ["FaultInjector"]


class FaultInjector:
    """Resolved fault state for one ``(schedule, topology, seed)`` run."""

    def __init__(
        self, schedule: FaultSchedule, topology: Topology, seed: int = 0
    ) -> None:
        self.schedule = schedule
        self.topology = topology
        self.seed = seed
        #: link id -> earliest virtual time at which the link is dead.
        self._dead_links: Dict[int, float] = {}
        #: node id -> earliest virtual time at which the node is dead.
        self._dead_nodes: Dict[int, float] = {}
        #: link id -> [(at_us, factor), ...] bandwidth degradations.
        self._degraded: Dict[int, List[Tuple[float, float]]] = {}
        descriptions: List[str] = []
        for fault in schedule.faults:
            if isinstance(fault, LinkFault):
                descriptions.append(self._resolve_link_fault(fault))
            elif isinstance(fault, NodeFault):
                descriptions.append(self._resolve_node_fault(fault))
            else:
                descriptions.append(self._resolve_degrade_fault(fault))
        #: Human-readable resolved faults, in schedule order — these are
        #: what deadlock diagnostics and ``BroadcastResult.faults_active``
        #: report.
        self.descriptions: Tuple[str, ...] = tuple(descriptions)
        # Distinct activation times; the index found by bisect is the
        # "fault epoch" of a request time, which keys the route memo
        # (the set of active faults is monotone in time, so the epoch
        # fully determines it).
        times = {t for t in self._dead_links.values()}
        times.update(self._dead_nodes.values())
        # Kill epochs advance only on link/node deaths — the events that
        # change reachability.  The route memo is keyed on these, so a
        # degradation activating (which slows links but never reroutes)
        # does not invalidate cached BFS detours.
        self._kill_times: List[float] = sorted(times)
        for spans in self._degraded.values():
            times.update(t for t, _ in spans)
        self._times: List[float] = sorted(times)
        self._route_memo: Dict[Tuple[int, int, int], Optional[Tuple[int, ...]]] = {}
        self._any_degraded = bool(self._degraded)

    # -- resolution -------------------------------------------------------
    def _resolve_node_id(self, endpoint: Endpoint, context: str) -> int:
        topology = self.topology
        if isinstance(endpoint, tuple):
            node_at = getattr(topology, "node_at", None)
            if node_at is None:
                raise ConfigurationError(
                    f"{context}: {topology!r} has no coordinate system; "
                    "use plain node ids in fault endpoints"
                )
            try:
                return node_at(*endpoint)
            except TypeError:
                raise ConfigurationError(
                    f"{context}: coordinate {endpoint} has the wrong arity "
                    f"for {topology!r}"
                ) from None
        if not 0 <= endpoint < topology.num_nodes:
            raise ConfigurationError(
                f"{context}: node {endpoint} out of range "
                f"[0, {topology.num_nodes})"
            )
        return endpoint

    def _kill_link(self, link_id: int, at_us: float) -> None:
        prev = self._dead_links.get(link_id)
        if prev is None or at_us < prev:
            self._dead_links[link_id] = at_us

    def _resolve_link_fault(self, fault: LinkFault) -> str:
        context = fault.canonical()
        a = self._resolve_node_id(fault.a, context)
        b = self._resolve_node_id(fault.b, context)
        topology = self.topology
        killed = False
        for u, v in ((a, b), (b, a)):
            if topology.has_wire_link(u, v):
                self._kill_link(topology.wire_link(u, v), fault.at_us)
                killed = True
        if not killed:
            raise ConfigurationError(
                f"{context}: no wire link between nodes {a} and {b} "
                f"in {topology!r}"
            )
        return f"link {a}<->{b} dead from t={fault.at_us:g}us"

    def _resolve_node_fault(self, fault: NodeFault) -> str:
        context = fault.canonical()
        node = self._resolve_node_id(fault.node, context)
        topology = self.topology
        prev = self._dead_nodes.get(node)
        if prev is None or fault.at_us < prev:
            self._dead_nodes[node] = fault.at_us
        self._kill_link(topology.injection_link(node), fault.at_us)
        self._kill_link(topology.ejection_link(node), fault.at_us)
        for neighbor in topology.neighbors(node):
            self._kill_link(topology.wire_link(node, neighbor), fault.at_us)
            if topology.has_wire_link(neighbor, node):
                self._kill_link(topology.wire_link(neighbor, node), fault.at_us)
        return f"node {node} dead from t={fault.at_us:g}us"

    def _resolve_degrade_fault(self, fault: DegradeFault) -> str:
        topology = self.topology
        num_wire = topology.num_wire_links
        if num_wire == 0:
            raise ConfigurationError(
                f"{fault.canonical()}: {topology!r} has no wire links to degrade"
            )
        count = max(1, round(fault.fraction * num_wire))
        # Seeded by (canonical schedule, run seed): string seeding is
        # stable across processes and PYTHONHASHSEED values, so worker
        # pools and the cache see the identical degraded subset.
        rng = random.Random(f"{self.schedule.canonical()}#{self.seed}")
        base = 2 * topology.num_nodes
        for index in sorted(rng.sample(range(num_wire), count)):
            self._degraded.setdefault(base + index, []).append(
                (fault.at_us, fault.factor)
            )
        return (
            f"{count}/{num_wire} links degraded {fault.factor:g}x "
            f"from t={fault.at_us:g}us"
        )

    # -- queries ----------------------------------------------------------
    def epoch(self, now: float) -> int:
        """Index of the fault activation epoch containing time ``now``."""
        return bisect_right(self._times, now)

    def kill_epoch(self, now: float) -> int:
        """Index of the *reachability* epoch containing time ``now``.

        Advances only when a link or node dies — degradations change
        timing, never routes — so two requests in the same kill epoch
        are guaranteed to see the identical survived-link set.
        """
        return bisect_right(self._kill_times, now)

    def node_dead(self, node: int, now: float) -> bool:
        """Whether ``node`` has failed by time ``now``."""
        at = self._dead_nodes.get(node)
        return at is not None and at <= now

    def link_dead(self, link_id: int, now: float) -> bool:
        """Whether ``link_id`` has failed by time ``now``."""
        at = self._dead_links.get(link_id)
        return at is not None and at <= now

    def link_factor(self, link_id: int, now: float) -> float:
        """Bandwidth-degradation multiplier of one link at time ``now``."""
        spans = self._degraded.get(link_id)
        if not spans:
            return 1.0
        return max((f for t, f in spans if t <= now), default=1.0)

    def byte_factor(self, path: Tuple[int, ...], now: float) -> float:
        """Worst degradation multiplier along ``path`` (worm streams at
        the slowest link's rate)."""
        if not self._any_degraded:
            return 1.0
        factor = 1.0
        for link in path:
            f = self.link_factor(link, now)
            if f > factor:
                factor = f
        return factor

    # -- fault-aware routing ----------------------------------------------
    def plan(
        self, src: int, dst: int, now: float
    ) -> Tuple[Optional[Tuple[int, ...]], float]:
        """``(link path, byte factor)`` for a transfer requested at ``now``.

        The path is the dimension-order route when it survives, a BFS
        detour when it does not, and ``None`` when the destination is
        unreachable over the live links (the message is lost).
        """
        path = self.topology.route_links(src, dst)
        if self._dead_links:
            blocked = any(self.link_dead(link, now) for link in path)
            if blocked:
                key = (src, dst, self.kill_epoch(now))
                try:
                    detour = self._route_memo[key]
                except KeyError:
                    detour = self._detour(src, dst, now)
                    self._route_memo[key] = detour
                if detour is None:
                    return None, 1.0
                path = detour
        return path, self.byte_factor(path, now)

    def _detour(self, src: int, dst: int, now: float) -> Optional[Tuple[int, ...]]:
        """Shortest live link path ``src -> dst``, or ``None``.

        Deterministic: BFS expands neighbours in sorted (adjacency)
        order, so ties always resolve the same way.
        """
        topology = self.topology
        if self.link_dead(topology.injection_link(src), now) or self.link_dead(
            topology.ejection_link(dst), now
        ):
            return None
        parent: Dict[int, int] = {src: -1}
        frontier = deque((src,))
        while frontier:
            u = frontier.popleft()
            if u == dst:
                break
            for v in topology.neighbors(u):
                if v in parent:
                    continue
                if self.link_dead(topology.wire_link(u, v), now):
                    continue
                # A dead node cannot forward traffic; it is only a valid
                # hop as the final destination (whose ejection link was
                # already checked above, and is dead for dead nodes).
                if v != dst and self.node_dead(v, now):
                    continue
                parent[v] = u
                frontier.append(v)
        if dst not in parent:
            return None
        nodes = [dst]
        while nodes[-1] != src:
            nodes.append(parent[nodes[-1]])
        nodes.reverse()
        path = [topology.injection_link(src)]
        path.extend(
            topology.wire_link(u, v) for u, v in zip(nodes, nodes[1:])
        )
        path.append(topology.ejection_link(dst))
        return tuple(path)

    # -- introspection ----------------------------------------------------
    @property
    def has_dead_links(self) -> bool:
        """Whether any link (or node) failure is scheduled."""
        return bool(self._dead_links)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector {self.schedule.canonical()!r} "
            f"on {self.topology!r} seed={self.seed}>"
        )
