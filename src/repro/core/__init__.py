"""The paper's contribution: s-to-p broadcasting.

* :class:`~repro.core.problem.BroadcastProblem` — machine + source set
  + message sizes.
* :mod:`~repro.core.schedule` — the communication-schedule IR every
  algorithm compiles to (rounds of message-set transfers).
* :mod:`~repro.core.algorithms` — the paper's algorithms, each a
  schedule builder.
* :mod:`~repro.core.executor` — runs a schedule on the simulated
  machine with data-parallel (not global) synchronisation.
* :func:`~repro.core.runner.run_broadcast` — the one-call driver:
  builds the schedule, runs it, verifies delivery, reports time and
  metrics.
* :mod:`~repro.core.ideal` — machine-dimension-aware ideal source
  distributions used by the repositioning algorithms.
* :mod:`~repro.core.analysis` — the analytic Figure-2 parameter model.
* :mod:`~repro.core.selector` — the paper's §5.2 recommendation logic.
"""

from __future__ import annotations

from repro.core.problem import BroadcastProblem
from repro.core.recovery import RecoveryOutcome, run_recovery
from repro.core.runner import BroadcastResult, run_broadcast
from repro.core.schedule import Round, Schedule, Transfer

__all__ = [
    "BroadcastProblem",
    "Transfer",
    "Round",
    "Schedule",
    "run_broadcast",
    "BroadcastResult",
    "run_recovery",
    "RecoveryOutcome",
]
