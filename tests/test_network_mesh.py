"""Unit tests for the 2-D mesh and its XY routing."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network import Mesh2D


class TestMeshShape:
    def test_node_count(self):
        assert Mesh2D(3, 4).num_nodes == 12

    def test_coords_roundtrip(self):
        topo = Mesh2D(3, 4)
        for node in range(topo.num_nodes):
            r, c = topo.coords(node)
            assert topo.node_at(r, c) == node

    def test_out_of_range_coordinate_raises(self):
        topo = Mesh2D(3, 4)
        with pytest.raises(TopologyError):
            topo.node_at(3, 0)
        with pytest.raises(TopologyError):
            topo.node_at(0, 4)

    def test_invalid_shape_raises(self):
        with pytest.raises(TopologyError):
            Mesh2D(0, 4)

    def test_wire_link_count(self):
        # 2 directed links per undirected edge: r*(c-1) + c*(r-1) edges
        topo = Mesh2D(3, 4)
        assert topo.num_wire_links == 2 * (3 * 3 + 4 * 2)

    def test_corner_and_interior_degree(self):
        topo = Mesh2D(3, 4)
        assert len(topo.neighbors(0)) == 2  # corner
        assert len(topo.neighbors(topo.node_at(1, 1))) == 4  # interior

    def test_no_wraparound(self):
        topo = Mesh2D(3, 4)
        assert not topo.has_wire_link(topo.node_at(0, 0), topo.node_at(0, 3))
        assert not topo.has_wire_link(topo.node_at(0, 0), topo.node_at(2, 0))


class TestXYRouting:
    def test_row_first_then_column(self):
        topo = Mesh2D(4, 4)
        nodes = topo.route_nodes(topo.node_at(0, 0), topo.node_at(2, 3))
        coords = [topo.coords(n) for n in nodes]
        assert coords == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]

    def test_westward_and_northward(self):
        topo = Mesh2D(4, 4)
        nodes = topo.route_nodes(topo.node_at(3, 3), topo.node_at(1, 1))
        coords = [topo.coords(n) for n in nodes]
        assert coords == [(3, 3), (3, 2), (3, 1), (2, 1), (1, 1)]

    def test_same_row_route(self):
        topo = Mesh2D(4, 4)
        nodes = topo.route_nodes(topo.node_at(2, 0), topo.node_at(2, 2))
        assert [topo.coords(n) for n in nodes] == [(2, 0), (2, 1), (2, 2)]

    def test_same_column_route(self):
        topo = Mesh2D(4, 4)
        nodes = topo.route_nodes(topo.node_at(0, 2), topo.node_at(2, 2))
        assert [topo.coords(n) for n in nodes] == [(0, 2), (1, 2), (2, 2)]

    def test_distance_is_manhattan(self):
        topo = Mesh2D(5, 7)
        for a in (0, 6, 17, 34):
            for b in (0, 6, 17, 34):
                ra, ca = topo.coords(a)
                rb, cb = topo.coords(b)
                assert topo.distance(a, b) == abs(ra - rb) + abs(ca - cb)

    def test_consecutive_route_nodes_are_neighbors(self):
        topo = Mesh2D(5, 7)
        nodes = topo.route_nodes(0, topo.num_nodes - 1)
        for u, v in zip(nodes, nodes[1:]):
            assert topo.has_wire_link(u, v)

    def test_route_is_deterministic(self):
        topo = Mesh2D(6, 6)
        assert topo.route(3, 29) == topo.route(3, 29)
