"""Reliable transport over the lossy fabric: the recovery layer's wire.

Under fault injection a plain :class:`~repro.mpsim.comm.Comm` send can
vanish (every route crosses a dead link) or hang forever.
:class:`ReliableComm` wraps a communicator with the classic
end-to-end machinery real transports use:

* **sequence-numbered envelopes** — every data message carries a per
  ``(destination, tag)`` stream sequence number, so retransmits are
  recognisable as duplicates and delivered exactly once;
* **ACK/NACK** — the receiver acknowledges every data message (including
  duplicates, whose earlier ACK may itself have been lost), or
  negatively acknowledges one its caller refuses, which fails the
  sender fast instead of burning its retry budget;
* **retransmit with backoff** — an unacknowledged message is re-sent
  with a growing timeout budget (reusing the ``timeout_us`` /
  ``max_retries`` plumbing of :meth:`Comm.send`);
* **failure detection** — once the retry budget is exhausted (or a NACK
  arrives), the peer is *presumed failed* and
  :class:`~repro.errors.PeerFailedError` is raised, turning silent loss
  into a typed error the algorithm can act on.  The presumption is
  sticky: later sends to the same peer fail immediately.

Delivery semantics are exactly-once per stream for everything the
receiver returns; the network may still carry duplicates (late original
plus retransmit), which the receive side absorbs.

Tag spaces: user tags are small non-negative integers; data rides
``tag + DATA_TAG_BASE`` and acknowledgements ``tag + ACK_TAG_BASE``,
both above every collective tag base, so reliable streams never collide
with plain traffic on the same communicator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Set, Tuple

from repro.errors import CommError, PeerFailedError, RecvTimeoutError
from repro.mpsim.comm import ANY_SOURCE, Comm
from repro.mpsim.envelope import Envelope

__all__ = ["ReliableComm", "transfer_budget"]

#: Reliable data / acknowledgement tag bases (collectives stop at 1<<26).
DATA_TAG_BASE = 1 << 27
ACK_TAG_BASE = 1 << 28
#: Simulated size of an ACK/NACK control message (header-only packet).
ACK_NBYTES = 16


def transfer_budget(comm: Comm, nbytes: int, slack: float = 8.0) -> float:
    """A generous one-transfer timeout for ``nbytes`` on this machine.

    Upper-bounds a contention-free transfer — software overheads, the
    longest possible path, the wire time, the receive copy — and scales
    it by ``slack`` to absorb link contention and degraded links.  The
    backoff of the retry loop covers what slack does not.
    """
    params = comm.world.params
    hops = max(comm.world.size, 2)
    base = (
        params.send_overhead()
        + params.recv_overhead()
        + params.route_setup
        + hops * params.t_hop
        + max(nbytes, 1) * params.t_byte
        + params.copy_cost(max(nbytes, 1))
    )
    return slack * base


class ReliableComm:
    """Reliable, duplicate-suppressing transport over a :class:`Comm`.

    Parameters
    ----------
    comm:
        The communicator to wrap (group ranks address messages).
    timeout_us:
        Per-attempt ACK budget of :meth:`send`.  ``None`` derives a
        machine-aware default per message via :func:`transfer_budget`.
    max_retries:
        Retransmissions after the first attempt; the retry budget grows
        by ``backoff_factor`` per attempt.
    """

    def __init__(
        self,
        comm: Comm,
        *,
        timeout_us: Optional[float] = None,
        max_retries: int = 4,
        backoff_factor: float = 2.0,
    ) -> None:
        if timeout_us is not None and timeout_us <= 0.0:
            raise CommError(f"timeout_us must be positive, got {timeout_us}")
        if max_retries < 0:
            raise CommError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_factor < 1.0:
            raise CommError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        self.comm = comm
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        #: Next sequence number per outgoing ``(dest, tag)`` stream.
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: Delivered sequence numbers per incoming ``(source, tag)`` stream.
        self._delivered: Dict[Tuple[int, int], Set[int]] = {}
        #: Group ranks presumed failed (sticky; see :meth:`mark_failed`).
        self._failed: Set[int] = set()

    # -- failure bookkeeping ----------------------------------------------
    @property
    def failed_peers(self) -> frozenset:
        """Group ranks this endpoint has presumed failed."""
        return frozenset(self._failed)

    def mark_failed(self, rank: int) -> None:
        """Record ``rank`` as failed; later sends to it fail immediately."""
        self._failed.add(rank)

    def is_failed(self, rank: int) -> bool:
        """Whether ``rank`` has been presumed failed by this endpoint."""
        return rank in self._failed

    # -- sending -----------------------------------------------------------
    def send(
        self, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> Generator[Any, Any, int]:
        """Reliable blocking send; returns the stream sequence number.

        Completes when ``dest`` has acknowledged the message.  Raises
        :class:`~repro.errors.PeerFailedError` when the peer is already
        presumed failed, NACKs the message, is a dead node, or stays
        silent through every retransmission.
        """
        comm = self.comm
        engine = comm.world.engine
        if dest in self._failed:
            raise PeerFailedError(
                f"reliable send to rank {comm.translate(dest)}: "
                "peer already presumed failed"
            )
        key = (dest, tag)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        data_tag = DATA_TAG_BASE + tag
        ack_tag = ACK_TAG_BASE + tag
        budget = (
            self.timeout_us
            if self.timeout_us is not None
            else transfer_budget(comm, nbytes)
        )
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                yield from comm.isend(
                    dest, ("dat", seq, payload), nbytes, tag=data_tag
                )
            except PeerFailedError:
                self._failed.add(dest)
                raise
            deadline = engine.now + budget
            while True:
                remaining = deadline - engine.now
                if remaining <= 0.0:
                    break
                try:
                    ack = yield from comm.recv(
                        source=dest, tag=ack_tag, timeout_us=remaining
                    )
                except RecvTimeoutError:
                    break
                kind, ack_seq = ack.payload
                if ack_seq != seq:
                    # A duplicate ACK from an earlier exchange whose
                    # first ACK we already consumed; drain and keep
                    # waiting within the same deadline.
                    continue
                if kind == "ack":
                    return seq
                self._failed.add(dest)
                raise PeerFailedError(
                    f"reliable send to rank {comm.translate(dest)} "
                    f"rejected (NACK for seq {seq}) at t={engine.now:.3f}us"
                )
            if engine.tracer is not None:
                engine.trace(
                    "reliable_retry",
                    src=comm.world_rank,
                    dst=comm.translate(dest),
                    tag=tag,
                    seq=seq,
                    attempt=attempt,
                    budget_us=budget,
                )
            if attempt + 1 < attempts:
                budget *= self.backoff_factor
        self._failed.add(dest)
        raise PeerFailedError(
            f"rank {comm.translate(dest)} presumed failed: no ACK for "
            f"seq {seq} after {attempts} attempt(s) "
            f"(final budget {budget:g}us) at t={engine.now:.3f}us"
        )

    # -- receiving ---------------------------------------------------------
    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = 0,
        *,
        timeout_us: Optional[float] = None,
        accept: Optional[Callable[[Any], bool]] = None,
    ) -> Generator[Any, Any, Envelope]:
        """Reliable receive: exactly-once delivery per stream.

        Every incoming data message is acknowledged — duplicates too,
        since the ACK that made them duplicates may itself have been
        lost — but only the first copy is returned.  ``accept`` (when
        given) vets the payload: a refused message is NACKed, failing
        the sender fast, and the receive keeps waiting.

        ``timeout_us`` bounds the *total* wait;
        :class:`~repro.errors.RecvTimeoutError` is raised on expiry.
        """
        comm = self.comm
        engine = comm.world.engine
        data_tag = DATA_TAG_BASE + tag
        ack_tag = ACK_TAG_BASE + tag
        deadline = None if timeout_us is None else engine.now + timeout_us
        while True:
            if deadline is None:
                envelope = yield from comm.recv(source=source, tag=data_tag)
            else:
                remaining = deadline - engine.now
                if remaining <= 0.0:
                    raise RecvTimeoutError(
                        f"reliable recv at rank {comm.world_rank} timed out "
                        f"after {timeout_us:g}us at t={engine.now:.3f}us"
                    )
                envelope = yield from comm.recv(
                    source=source, tag=data_tag, timeout_us=remaining
                )
            _kind, seq, payload = envelope.payload
            src = envelope.source
            if accept is not None and not accept(payload):
                yield from self._post_control(src, ack_tag, ("nack", seq))
                continue
            yield from self._post_control(src, ack_tag, ("ack", seq))
            delivered = self._delivered.setdefault((src, tag), set())
            if seq in delivered:
                # Retransmit of a message we already returned: the fresh
                # ACK above replaces its lost predecessor, nothing more.
                continue
            delivered.add(seq)
            return Envelope(
                source=src,
                dest=envelope.dest,
                tag=tag,
                payload=payload,
                nbytes=envelope.nbytes,
                send_time=envelope.send_time,
                arrival_time=envelope.arrival_time,
            )

    def _post_control(
        self, dest: int, tag: int, payload: Tuple[str, int]
    ) -> Generator[Any, Any, None]:
        """Fire-and-forget control message (ACK/NACK); loss is tolerated."""
        try:
            yield from self.comm.isend(dest, payload, ACK_NBYTES, tag=tag)
        except PeerFailedError:
            # The sender died between sending and our reply; its retry
            # loop will conclude the same thing from silence.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReliableComm over {self.comm!r} "
            f"retries={self.max_retries} failed={sorted(self._failed)}>"
        )
