"""Differential tests for fault-injected runs: every path, one answer.

The acceptance bar for fault injection is the same one the sweep
executor already holds fault-free runs to: the identical ``--faults``
spec and seed must produce bit-identical ``BroadcastResult`` JSON
whether evaluated serially, fanned over worker processes, or served
from a warm cache.  Degrade subsets are seeded from the canonical spec
string (PYTHONHASHSEED-independent), detours are deterministic BFS, so
nothing here is allowed to wobble.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import ResultCache, SweepExecutor, SweepSpec

#: A grid crossing fault-free, detoured, lossy (partial delivery), and
#: degraded conditions — node:15 makes Br_Lin runs genuinely partial.
GRID = SweepSpec(
    machines=("paragon:4x4",),
    distributions=("E", "R"),
    s_values=(4,),
    message_sizes=(256,),
    algorithms=("Br_Lin", "2-Step"),
    seeds=(0, 1),
    faults=(None, "link:5-6", "node:15", "degrade:links=0.25,factor=4"),
)


def fingerprint(result):
    """The complete serialized result — stricter than field-picking."""
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def points():
    pts = GRID.points()
    assert len(pts) == GRID.num_points == 32
    return pts


@pytest.fixture(scope="module")
def serial_results(points):
    return [fingerprint(r) for r in SweepExecutor(jobs=1).run(points)]


def test_grid_exercises_partial_delivery(points, serial_results):
    # Guard: the node-fault cells really are lossy, so the differential
    # paths below are proven over partial results too, not just clean ones.
    deliveries = [json.loads(blob).get("delivery", 1.0) for blob in serial_results]
    assert any(d < 1.0 for d in deliveries)
    assert any(d == 1.0 for d in deliveries)


def test_parallel_matches_serial(points, serial_results):
    parallel = [fingerprint(r) for r in SweepExecutor(jobs=4).run(points)]
    assert parallel == serial_results


def test_warm_cache_matches_serial(points, serial_results, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    executor = SweepExecutor(jobs=1, cache=cache)
    cold = [fingerprint(r) for r in executor.run(points)]
    assert cold == serial_results
    warm = [fingerprint(r) for r in executor.run(points)]
    assert warm == serial_results
    assert executor.last_report.cached == len(points)


def test_parallel_warm_cache_matches_serial(points, serial_results, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    SweepExecutor(jobs=4, cache=cache).run(points)
    warm = [fingerprint(r) for r in SweepExecutor(jobs=4, cache=cache).run(points)]
    assert warm == serial_results


def test_repeated_serial_runs_are_stable(points, serial_results):
    again = [fingerprint(r) for r in SweepExecutor(jobs=1).run(points)]
    assert again == serial_results


# ---------------------------------------------------------------------------
# Recovery differential: every Br_* algorithm, connected link kills
# ---------------------------------------------------------------------------
#: Three wire cuts that leave the 8x8 mesh connected: recovery-enabled
#: runs must reach full delivery, and must do so bit-identically on
#: every evaluation path.
CONNECTED_KILLS = "link:(3,3)-(3,4)@0us;link:(0,0)-(0,1)@100us;link:(7,6)-(7,7)"

RECOVER_GRID = SweepSpec(
    machines=("paragon:8x8",),
    distributions=("E",),
    s_values=(4,),
    message_sizes=(256,),
    algorithms=("Br_Lin", "Br_Ring", "Br_xy_dim", "Br_xy_source"),
    seeds=(0,),
    faults=(CONNECTED_KILLS,),
    recover=True,
)


@pytest.fixture(scope="module")
def recover_points():
    pts = RECOVER_GRID.points()
    assert all(p.recover for p in pts)
    return pts


@pytest.fixture(scope="module")
def recover_serial(recover_points):
    return [fingerprint(r) for r in SweepExecutor(jobs=1).run(recover_points)]


def test_recovery_reaches_full_delivery(recover_serial):
    for blob in recover_serial:
        data = json.loads(blob)
        assert data.get("delivery", 1.0) == 1.0
        assert data["recovered"] is True


def test_recovery_parallel_matches_serial(recover_points, recover_serial):
    parallel = [
        fingerprint(r) for r in SweepExecutor(jobs=4).run(recover_points)
    ]
    assert parallel == recover_serial


def test_recovery_warm_cache_matches_serial(
    recover_points, recover_serial, tmp_path
):
    cache = ResultCache(tmp_path / "cache")
    executor = SweepExecutor(jobs=1, cache=cache)
    cold = [fingerprint(r) for r in executor.run(recover_points)]
    assert cold == recover_serial
    warm = [fingerprint(r) for r in executor.run(recover_points)]
    assert warm == recover_serial
    assert executor.last_report.cached == len(recover_points)


def test_recover_points_hash_apart_from_plain_fault_points(recover_points):
    plain = SweepSpec(
        machines=("paragon:8x8",),
        distributions=("E",),
        s_values=(4,),
        message_sizes=(256,),
        algorithms=("Br_Lin", "Br_Ring", "Br_xy_dim", "Br_xy_source"),
        seeds=(0,),
        faults=(CONNECTED_KILLS,),
    ).points()
    assert {p.key() for p in plain}.isdisjoint(
        {p.key() for p in recover_points}
    )
