"""Measurement of the paper's five algorithm/distribution parameters.

Figure 2 of the paper characterises algorithms by *congestion*, *wait*,
*#send/rec*, *av_msg_lgth*, and *av_act_proc*.  The
:class:`~repro.metrics.counters.MetricsCollector` accumulates raw
per-rank, per-iteration counters as the communication layer executes,
and :class:`~repro.metrics.report.MetricsReport` reduces them to those
five quantities (plus totals useful for debugging and ablations).
"""

from __future__ import annotations

from repro.metrics.counters import MetricsCollector, RankCounters
from repro.metrics.progress import SweepReport
from repro.metrics.report import MetricsReport

__all__ = ["MetricsCollector", "RankCounters", "MetricsReport", "SweepReport"]
