"""The docs CI gates in ``tools/`` work, and the repo passes them."""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"


def run_tool(name: str, *args: str) -> "subprocess.CompletedProcess":
    return subprocess.run(
        [sys.executable, str(TOOLS / name), *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCheckDocstrings:
    def test_repo_passes(self):
        proc = run_tool("check_docstrings.py", str(REPO / "src"))
        assert proc.returncode == 0, proc.stderr
        assert "docstrings ok" in proc.stdout

    def test_missing_docstring_fails(self, tmp_path):
        (tmp_path / "documented.py").write_text('"""Has one."""\n')
        (tmp_path / "bare.py").write_text("x = 1\n")
        (tmp_path / "_private.py").write_text("y = 2\n")  # exempt
        proc = run_tool("check_docstrings.py", str(tmp_path))
        assert proc.returncode == 1
        assert "bare.py" in proc.stderr
        assert "_private.py" not in proc.stderr


class TestCheckLinks:
    def test_repo_passes(self):
        proc = run_tool("check_links.py", str(REPO))
        assert proc.returncode == 0, proc.stderr
        assert "links ok" in proc.stdout

    def test_broken_link_fails(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[good](docs/real.md) [bad](docs/missing.md)\n"
        )
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "real.md").write_text("ok\n")
        proc = run_tool("check_links.py", str(tmp_path))
        assert proc.returncode == 1
        assert "missing.md" in proc.stderr
        assert "real.md" not in proc.stderr

    def test_external_and_anchor_links_are_skipped(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[web](https://example.com/x) [anchor](#section)\n"
        )
        proc = run_tool("check_links.py", str(tmp_path))
        assert proc.returncode == 0
