"""Unit tests for the topology base machinery and the linear array."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError, TopologyError
from repro.network import LinearArray


class TestLinkNumbering:
    def test_injection_and_ejection_ids(self):
        topo = LinearArray(4)
        assert [topo.injection_link(i) for i in range(4)] == [0, 1, 2, 3]
        assert [topo.ejection_link(i) for i in range(4)] == [4, 5, 6, 7]

    def test_wire_link_lookup_roundtrip(self):
        topo = LinearArray(4)
        link = topo.wire_link(1, 2)
        assert topo.link_endpoints(link) == (1, 2)

    def test_missing_wire_link_raises(self):
        topo = LinearArray(4)
        with pytest.raises(RoutingError):
            topo.wire_link(0, 2)

    def test_num_links_accounting(self):
        topo = LinearArray(5)
        # 5 inj + 5 ej + 2*(5-1) wires
        assert topo.num_links == 10 + 8
        assert topo.num_wire_links == 8

    def test_link_endpoints_for_endpoint_channels(self):
        topo = LinearArray(3)
        assert topo.link_endpoints(topo.injection_link(2)) == (2, 2)
        assert topo.link_endpoints(topo.ejection_link(1)) == (1, 1)

    def test_unknown_link_id_raises(self):
        topo = LinearArray(3)
        with pytest.raises(TopologyError):
            topo.link_endpoints(999)

    def test_node_bounds_checked(self):
        topo = LinearArray(3)
        with pytest.raises(TopologyError):
            topo.injection_link(3)
        with pytest.raises(TopologyError):
            topo.route(0, 5)


class TestLinearArrayRouting:
    def test_forward_route_nodes(self):
        topo = LinearArray(6)
        assert topo.route_nodes(1, 4) == [1, 2, 3, 4]

    def test_backward_route_nodes(self):
        topo = LinearArray(6)
        assert topo.route_nodes(4, 1) == [4, 3, 2, 1]

    def test_self_route_is_empty(self):
        topo = LinearArray(6)
        assert topo.route(2, 2) == []
        assert topo.distance(2, 2) == 0

    def test_route_includes_injection_and_ejection(self):
        topo = LinearArray(6)
        path = topo.route(0, 2)
        assert path[0] == topo.injection_link(0)
        assert path[-1] == topo.ejection_link(2)
        assert len(path) == 2 + 2  # inj + 2 wires + ej

    def test_distance_is_hop_count(self):
        topo = LinearArray(6)
        assert topo.distance(0, 5) == 5
        assert topo.distance(5, 0) == 5

    def test_neighbors(self):
        topo = LinearArray(4)
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(2) == [1, 3]

    def test_invalid_size_rejected(self):
        with pytest.raises(TopologyError):
            LinearArray(0)

    def test_coords(self):
        topo = LinearArray(4)
        assert topo.coords(3) == (3,)
        assert topo.shape == (4,)
