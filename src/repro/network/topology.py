"""Topology base class: nodes, directed links, and routes.

A topology is a directed multigraph over ``num_nodes`` physical nodes.
Every node owns one *injection* link (processor → router) and one
*ejection* link (router → processor), plus the topology's wire links.
Links are identified by dense integer ids so the fabric can keep its
reservation state in flat arrays.

Subclasses implement the coordinate system and the dimension-order
:meth:`route`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

from repro.errors import RoutingError, TopologyError

__all__ = ["Topology"]

#: All-pairs routes are precomputed at finalize up to this node count
#: (<= 992 routes); larger topologies memoize lazily with a bounded cache.
_PRECOMPUTE_MAX_NODES = 32

#: Cap on lazily cached routes for large topologies.  A 32x32 mesh has
#: ~1M ordered pairs; real workloads touch a small working set, so the
#: cache evicts in FIFO order once full instead of growing unboundedly.
_ROUTE_CACHE_MAX = 1 << 16


class Topology(ABC):
    """Base class for interconnect topologies.

    Subclasses call :meth:`_finalize` after registering their wire
    links via :meth:`_add_link`.  Link ids are assigned as follows:

    * ``0 .. num_nodes-1`` — injection links (node *i*'s is id *i*);
    * ``num_nodes .. 2*num_nodes-1`` — ejection links;
    * ``2*num_nodes ..`` — wire links, in registration order.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise TopologyError(f"need at least one node, got {num_nodes}")
        self._num_nodes = num_nodes
        self._wire_endpoints: List[Tuple[int, int]] = []
        self._wire_index: Dict[Tuple[int, int], int] = {}
        self._finalized = False
        self._adjacency: Tuple[Tuple[int, ...], ...] = ()
        self._route_cache: Dict[int, Tuple[int, ...]] = {}
        self._route_cache_bounded = False

    # -- construction -----------------------------------------------------
    def _add_link(self, u: int, v: int) -> int:
        """Register the directed wire link ``u -> v``; returns its id."""
        if self._finalized:
            raise TopologyError("topology already finalized")
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-link at node {u}")
        key = (u, v)
        if key in self._wire_index:
            raise TopologyError(f"duplicate link {u}->{v}")
        link_id = 2 * self._num_nodes + len(self._wire_endpoints)
        self._wire_endpoints.append(key)
        self._wire_index[key] = link_id
        return link_id

    def _finalize(self) -> None:
        """Freeze the link set and build the derived lookup structures.

        * adjacency table — per-node sorted neighbor tuples, so
          :meth:`neighbors` is O(degree) instead of an O(num_links) scan;
        * route cache — all-pairs link paths for small topologies
          (``num_nodes <= 32``), a bounded lazily-filled memo otherwise.
        """
        self._finalized = True
        out: List[List[int]] = [[] for _ in range(self._num_nodes)]
        for u, v in self._wire_endpoints:
            out[u].append(v)
        self._adjacency = tuple(tuple(sorted(vs)) for vs in out)
        self._route_cache = {}
        self._route_cache_bounded = self._num_nodes > _PRECOMPUTE_MAX_NODES
        if not self._route_cache_bounded:
            n = self._num_nodes
            for src in range(n):
                base = src * n
                for dst in range(n):
                    if src != dst:
                        self._route_cache[base + dst] = self._build_route(src, dst)

    # -- identity --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of physical nodes."""
        return self._num_nodes

    @property
    def num_links(self) -> int:
        """Total number of links (injection + ejection + wires)."""
        return 2 * self._num_nodes + len(self._wire_endpoints)

    @property
    def num_wire_links(self) -> int:
        """Number of directed wire links (excludes injection/ejection)."""
        return len(self._wire_endpoints)

    def injection_link(self, node: int) -> int:
        """Id of ``node``'s processor→router channel."""
        self._check_node(node)
        return node

    def ejection_link(self, node: int) -> int:
        """Id of ``node``'s router→processor channel."""
        self._check_node(node)
        return self._num_nodes + node

    def wire_link(self, u: int, v: int) -> int:
        """Id of the directed wire link ``u -> v``.

        Raises :class:`~repro.errors.RoutingError` if absent.
        """
        try:
            return self._wire_index[(u, v)]
        except KeyError:
            raise RoutingError(f"no link {u}->{v} in {self!r}") from None

    def has_wire_link(self, u: int, v: int) -> bool:
        """Whether the directed wire link ``u -> v`` exists."""
        return (u, v) in self._wire_index

    def link_endpoints(self, link_id: int) -> Tuple[int, int]:
        """``(u, v)`` endpoints of any link (end nodes for inj/ej)."""
        n = self._num_nodes
        if 0 <= link_id < n:
            return (link_id, link_id)
        if n <= link_id < 2 * n:
            return (link_id - n, link_id - n)
        try:
            return self._wire_endpoints[link_id - 2 * n]
        except IndexError:
            raise TopologyError(f"unknown link id {link_id}") from None

    def neighbors(self, node: int) -> List[int]:
        """Nodes reachable from ``node`` over one wire link, sorted."""
        self._check_node(node)
        if self._finalized:
            return list(self._adjacency[node])
        return sorted(v for (u, v) in self._wire_endpoints if u == node)

    # -- routing ---------------------------------------------------------
    @abstractmethod
    def route_nodes(self, src: int, dst: int) -> List[int]:
        """Dimension-order node path ``[src, ..., dst]`` (inclusive)."""

    def route(self, src: int, dst: int) -> List[int]:
        """Full link-id path: injection, wires along the node path, ejection.

        For ``src == dst`` the path is empty — a self-send never touches
        the network.
        """
        return list(self.route_links(src, dst))

    def route_links(self, src: int, dst: int) -> Tuple[int, ...]:
        """Memoized link-id path as an immutable tuple (the hot-path API).

        The returned tuple is shared across calls and **must not** be
        mutated by consumers; :class:`~repro.network.fabric.Fabric`
        iterates it in place.  Small topologies are fully precomputed at
        :meth:`_finalize`; large ones fill a bounded FIFO-evicting memo.
        """
        if src == dst:
            return ()
        n = self._num_nodes
        if not 0 <= src < n or not 0 <= dst < n:
            # Keep the seed behavior (TopologyError from route_nodes'
            # bounds checks) — and keep out-of-range ids from aliasing
            # a valid pair in the flat src*n+dst keyspace.
            self._check_node(src)
            self._check_node(dst)
        cache = self._route_cache
        key = src * n + dst
        path = cache.get(key)
        if path is not None:
            return path
        path = self._build_route(src, dst)
        if self._route_cache_bounded and len(cache) >= _ROUTE_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[key] = path
        return path

    def _build_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Uncached route construction (the seed-code path, kept for
        differential testing against the memoized :meth:`route_links`)."""
        nodes = self.route_nodes(src, dst)
        if nodes[0] != src or nodes[-1] != dst:
            raise RoutingError(
                f"route_nodes({src}, {dst}) returned endpoints "
                f"{nodes[0]}..{nodes[-1]}"
            )
        path = [self.injection_link(src)]
        wire_index = self._wire_index
        append = path.append
        for u, v in zip(nodes, nodes[1:]):
            try:
                append(wire_index[(u, v)])
            except KeyError:
                raise RoutingError(f"no link {u}->{v} in {self!r}") from None
        append(self.ejection_link(dst))
        return tuple(path)

    def distance(self, src: int, dst: int) -> int:
        """Hop count of the dimension-order route (0 for self)."""
        if src == dst:
            return 0
        return len(self.route_nodes(src, dst)) - 1

    # -- helpers ------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self._num_nodes})"
            )

    @property
    @abstractmethod
    def shape(self) -> Sequence[int]:
        """Dimension extents, e.g. ``(rows, cols)`` or ``(x, y, z)``."""

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"<{type(self).__name__} {dims} ({self._num_nodes} nodes)>"
