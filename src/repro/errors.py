"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "RoutingError",
    "TopologyError",
    "CommError",
    "PeerFailedError",
    "SendTimeoutError",
    "RecvTimeoutError",
    "MatchingError",
    "ConfigurationError",
    "DistributedSweepError",
    "UnsupportedFastPathError",
    "DistributionError",
    "AlgorithmError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SimulationError(ReproError):
    """The discrete-event kernel reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    This is the simulator's analogue of an MPI hang: some process is
    waiting on a message or link grant that can never arrive.  The error
    message lists the blocked processes and what each was waiting for.
    """


class TopologyError(ReproError):
    """An interconnect topology was constructed or queried inconsistently."""


class RoutingError(TopologyError):
    """A route could not be produced between two nodes."""


class CommError(ReproError):
    """Misuse of the message-passing layer (bad rank, bad tag, ...)."""


class PeerFailedError(CommError):
    """A point-to-point operation targeted a node that has failed.

    Raised at the *sender* when fault injection has marked the
    destination node dead at send time — the simulated analogue of a
    connection refused / node-down error from the transport layer.
    """


class SendTimeoutError(CommError):
    """A blocking send with ``timeout_us`` did not complete in time.

    Under fault injection a send can stall indefinitely (dead path) or
    far beyond its budget (degraded links); algorithms opting into
    ``Comm.send(..., timeout_us=...)`` get this typed error instead of
    hanging, and may retry with backoff.
    """


class RecvTimeoutError(CommError):
    """A blocking receive with ``timeout_us`` expired before a match.

    The parked inbox request is withdrawn on expiry, so a message that
    arrives later is buffered normally instead of being claimed by the
    abandoned receive.  The reliable transport layer uses this to turn
    a silently lost message into failure *detection*.
    """


class MatchingError(CommError):
    """A receive could not be matched against the message that arrived."""


class ConfigurationError(ReproError):
    """Invalid machine or experiment configuration."""


class UnsupportedFastPathError(ConfigurationError):
    """``engine="fast"`` was requested for a run the fast path cannot model.

    The vectorized fast path replays clean runs only; fault injection,
    recovery, and tracing all need the full generator engine.  Under
    ``engine="auto"`` such runs silently fall back to the event engine;
    asking for ``engine="fast"`` explicitly raises this instead, so a
    benchmark script cannot believe it measured the fast path when it
    did not.
    """


class DistributedSweepError(ReproError):
    """A distributed sweep could not be completed or collected.

    Raised by the coordinator when results are missing after every work
    unit finished — which, given the durable lease/done protocol, means
    a worker recorded a point-evaluation *failure* in its done marker
    (the error text names the failing point and the worker's exception).
    Worker crashes and kills never raise this: their leases expire and
    the work is re-driven to completion.
    """


class DistributionError(ReproError):
    """A source distribution was asked for an impossible placement."""


class AlgorithmError(ReproError):
    """A broadcasting algorithm was invoked on an unsupported problem."""


class VerificationError(ReproError):
    """Post-run verification failed: some processor is missing messages."""
